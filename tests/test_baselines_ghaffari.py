"""Tests for the Ghaffari-2016 MIS program (single- and multi-execution)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.analysis import verify_mis
from repro.baselines import (
    ACTIVE,
    JOINED,
    GhaffariProgram,
    ghaffari_mis,
    ghaffari_shatter,
)
from repro.congest import Network


class TestGhaffariBaseline:
    def test_path_valid(self):
        g = graphs.path(12)
        result = ghaffari_mis(g, seed=0)
        assert verify_mis(g, result.mis).valid

    def test_clique_valid(self):
        g = graphs.clique(9)
        result = ghaffari_mis(g, seed=2)
        assert len(result.mis) == 1

    def test_empty_graph(self):
        g = graphs.empty_graph(4)
        result = ghaffari_mis(g, seed=0)
        assert result.mis == {0, 1, 2, 3}

    def test_gnp_valid(self):
        g = graphs.gnp(80, 0.08, seed=3)
        result = ghaffari_mis(g, seed=1)
        assert verify_mis(g, result.mis).valid

    def test_determinism(self):
        g = graphs.gnp(50, 0.1, seed=5)
        assert ghaffari_mis(g, seed=7).mis == ghaffari_mis(g, seed=7).mis

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            GhaffariProgram(executions=0)
        with pytest.raises(ValueError):
            GhaffariProgram(iterations=-1)


class TestShattering:
    def test_budgeted_run_halts_on_time(self):
        g = graphs.gnp(100, 0.1, seed=0)
        joined, undecided, network = ghaffari_shatter(g, iterations=5, seed=0)
        assert network.metrics().rounds <= 2 * 5 + 2

    def test_partition_is_consistent(self):
        g = graphs.gnp(100, 0.1, seed=1)
        joined, undecided, _ = ghaffari_shatter(g, iterations=8, seed=0)
        assert joined.isdisjoint(undecided)
        report = verify_mis(g, joined)
        assert report.independent

    def test_zero_iterations_decides_nothing(self):
        g = graphs.path(6)
        joined, undecided, network = ghaffari_shatter(g, iterations=0, seed=0)
        assert joined == set()
        assert undecided == set(g.nodes)
        assert network.metrics().max_energy == 0

    def test_more_iterations_fewer_undecided(self):
        g = graphs.gnp(200, 0.05, seed=2)
        _, undecided_short, _ = ghaffari_shatter(g, iterations=2, seed=0)
        _, undecided_long, _ = ghaffari_shatter(g, iterations=30, seed=0)
        assert len(undecided_long) <= len(undecided_short)

    def test_long_budget_decides_everything_on_small_graph(self):
        g = graphs.gnp(40, 0.15, seed=3)
        joined, undecided, _ = ghaffari_shatter(g, iterations=120, seed=1)
        assert not undecided
        assert verify_mis(g, joined).valid


class TestParallelExecutions:
    def _run(self, graph, executions, iterations, seed=0):
        programs = {
            v: GhaffariProgram(iterations=iterations, executions=executions)
            for v in graph.nodes
        }
        network = Network(graph, programs, seed=seed)
        network.run(max_rounds=10 * iterations + 16)
        return programs

    def test_each_execution_is_independent_set(self):
        g = graphs.gnp(40, 0.2, seed=4)
        executions = 8
        programs = self._run(g, executions, iterations=60)
        for e in range(executions):
            mis_e = {v for v, p in programs.items() if p.status[e] == JOINED}
            assert verify_mis(g, mis_e).independent

    def test_executions_differ(self):
        g = graphs.gnp(60, 0.15, seed=5)
        programs = self._run(g, executions=6, iterations=60, seed=9)
        sets = {
            frozenset(v for v, p in programs.items() if p.status[e] == JOINED)
            for e in range(6)
        }
        assert len(sets) > 1

    def test_at_least_one_execution_completes(self):
        """The Phase III argument: some execution decides every node."""
        g = graphs.gnp(30, 0.2, seed=6)
        executions = 10
        programs = self._run(g, executions, iterations=80, seed=3)
        complete = [
            e
            for e in range(executions)
            if all(p.status[e] != ACTIVE for p in programs.values())
        ]
        assert complete

    def test_bit_vector_messages_fit_budget(self):
        g = graphs.gnp(40, 0.2, seed=7)
        executions = 8
        programs = {
            v: GhaffariProgram(iterations=40, executions=executions)
            for v in g.nodes
        }
        network = Network(g, programs, seed=0)
        network.run(max_rounds=500)
        assert network.max_message_bits <= 3 * executions


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=30),
    p=st.floats(min_value=0.0, max_value=0.5),
    graph_seed=st.integers(min_value=0, max_value=100),
    run_seed=st.integers(min_value=0, max_value=100),
)
def test_ghaffari_always_valid_mis(n, p, graph_seed, run_seed):
    graph = graphs.gnp(n, p, seed=graph_seed)
    result = ghaffari_mis(graph, seed=run_seed)
    assert verify_mis(graph, result.mis).valid
