"""Tests for the sequential MIS reference implementations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.analysis import is_maximal_independent_set, verify_mis
from repro.baselines import greedy_mis, min_degree_greedy_mis, random_greedy_mis


class TestGreedyMIS:
    def test_path_default_order(self):
        assert greedy_mis(graphs.path(5)) == {0, 2, 4}

    def test_respects_custom_order(self):
        mis = greedy_mis(graphs.path(3), order=[1, 0, 2])
        assert mis == {1}

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            greedy_mis(graphs.path(3), order=[0, 1])

    def test_empty_graph_all_nodes(self):
        g = graphs.empty_graph(4)
        assert greedy_mis(g) == {0, 1, 2, 3}

    def test_clique_single_node(self):
        assert len(greedy_mis(graphs.clique(7))) == 1


class TestRandomGreedy:
    def test_deterministic_in_seed(self):
        g = graphs.gnp(40, 0.2, seed=0)
        assert random_greedy_mis(g, seed=5) == random_greedy_mis(g, seed=5)

    def test_valid_mis(self):
        g = graphs.gnp(40, 0.2, seed=0)
        assert is_maximal_independent_set(g, random_greedy_mis(g, seed=1))


class TestMinDegreeGreedy:
    def test_valid_mis(self):
        g = graphs.barabasi_albert(60, 3, seed=0)
        assert is_maximal_independent_set(g, min_degree_greedy_mis(g))

    def test_star_prefers_leaves(self):
        g = graphs.star(8)
        mis = min_degree_greedy_mis(g)
        assert mis == set(range(1, 8))


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    p = draw(st.floats(min_value=0.0, max_value=0.8))
    seed = draw(st.integers(min_value=0, max_value=1000))
    return graphs.gnp(n, p, seed=seed)


@settings(max_examples=80, deadline=None)
@given(graph=random_graphs(), seed=st.integers(min_value=0, max_value=99))
def test_all_sequential_variants_valid(graph, seed):
    for mis in (
        greedy_mis(graph),
        random_greedy_mis(graph, seed=seed),
        min_degree_greedy_mis(graph),
    ):
        assert verify_mis(graph, mis).valid
