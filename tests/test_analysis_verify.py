"""Tests for MIS verification, including hypothesis property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.analysis import (
    greedy_completion,
    is_independent_set,
    is_maximal_independent_set,
    uncovered_nodes,
    verify_mis,
)


class TestIndependence:
    def test_empty_set_is_independent(self):
        assert is_independent_set(graphs.path(3), set())

    def test_adjacent_pair_not_independent(self):
        assert not is_independent_set(graphs.path(3), {0, 1})

    def test_alternating_path_is_independent(self):
        assert is_independent_set(graphs.path(5), {0, 2, 4})

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError):
            is_independent_set(graphs.path(3), {7})


class TestMaximality:
    def test_alternating_path_is_maximal(self):
        assert is_maximal_independent_set(graphs.path(5), {0, 2, 4})

    def test_submaximal_detected(self):
        report = verify_mis(graphs.path(5), {0})
        assert report.independent
        assert not report.maximal
        assert set(report.uncovered_nodes) == {2, 3, 4}

    def test_conflict_detected(self):
        report = verify_mis(graphs.path(3), {0, 1})
        assert not report.independent
        assert report.conflicting_edges == [(0, 1)]

    def test_isolated_nodes_must_be_included(self):
        g = graphs.empty_graph(3)
        assert not is_maximal_independent_set(g, {0, 1})
        assert is_maximal_independent_set(g, {0, 1, 2})

    def test_star_hub_alone_is_maximal(self):
        g = graphs.star(6)
        assert is_maximal_independent_set(g, {0})

    def test_star_leaves_are_maximal(self):
        g = graphs.star(6)
        assert is_maximal_independent_set(g, set(range(1, 6)))


class TestGreedyCompletion:
    def test_completes_empty_set(self):
        g = graphs.path(5)
        completed = greedy_completion(g, set())
        assert is_maximal_independent_set(g, completed)

    def test_preserves_given_nodes(self):
        g = graphs.path(5)
        completed = greedy_completion(g, {2})
        assert 2 in completed
        assert is_maximal_independent_set(g, completed)

    def test_rejects_dependent_input(self):
        with pytest.raises(ValueError):
            greedy_completion(graphs.path(3), {0, 1})


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    p = draw(st.floats(min_value=0.0, max_value=1.0))
    return graphs.gnp(n, p, seed=seed)


@settings(max_examples=100, deadline=None)
@given(graph=random_graphs())
def test_greedy_completion_always_yields_valid_mis(graph):
    completed = greedy_completion(graph, set())
    report = verify_mis(graph, completed)
    assert report.valid


@settings(max_examples=100, deadline=None)
@given(graph=random_graphs())
def test_uncovered_nodes_consistency(graph):
    """A set is maximal iff it is independent and covers everything."""
    mis = greedy_completion(graph, set())
    assert uncovered_nodes(graph, mis) == []
    if mis:
        # Dropping any single member un-covers at least that member.
        victim = next(iter(mis))
        reduced = mis - {victim}
        assert victim in set(uncovered_nodes(graph, reduced)) | {
            u for v in reduced for u in graph.neighbors(v)
        }
