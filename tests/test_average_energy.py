"""Tests for Section 4: constant node-averaged energy."""


import pytest

from repro import graphs
from repro.analysis import is_independent_set, verify_mis
from repro.baselines import luby_mis
from repro.congest import EnergyLedger
from repro.core import (
    algorithm1_constant_average_energy,
    algorithm2_constant_average_energy,
    run_lemma42,
    run_sparsify,
)


class TestLemma42:
    def test_partition_and_independence(self):
        g = graphs.gnp_expected_degree(400, 24.0, seed=0)
        result = run_lemma42(g, seed=0, size_bound=400)
        result.check_partition(set(g.nodes))
        assert is_independent_set(g, result.joined)

    def test_failed_and_reduced_split_remaining(self):
        g = graphs.gnp_expected_degree(400, 24.0, seed=1)
        result = run_lemma42(g, seed=0, size_bound=400)
        failed = result.details["failed"]
        reduced = result.details["reduced"]
        assert failed | reduced == result.remaining
        assert not failed & reduced

    def test_reduced_degree_drops(self):
        g = graphs.gnp_expected_degree(600, 32.0, seed=2)
        result = run_lemma42(g, seed=0, size_bound=600)
        if result.details["iterations"] >= 1:
            assert (
                result.details["reduced_max_degree"]
                < result.details["delta2"]
            )

    def test_few_failures(self):
        """Failures happen with probability 1/polylog — should be rare."""
        g = graphs.gnp_expected_degree(600, 32.0, seed=3)
        result = run_lemma42(g, seed=0, size_bound=600)
        assert len(result.details["failed"]) <= g.number_of_nodes() / 4

    def test_empty_graph(self):
        import networkx as nx

        result = run_lemma42(nx.Graph(), seed=0, size_bound=10)
        assert result.remaining == set()

    def test_average_energy_small(self):
        n = 600
        g = graphs.gnp_expected_degree(n, 32.0, seed=4)
        ledger = EnergyLedger(g.nodes)
        result = run_lemma42(g, seed=0, ledger=ledger, size_bound=n)
        # Average pays the per-iteration blocks: O(iterations), far below
        # the round count.
        assert result.metrics.average_energy <= 4 * (
            result.details["iterations"] + 1
        )


class TestSparsify:
    def test_partition_and_independence(self):
        g = graphs.gnp_expected_degree(300, 6.0, seed=5)
        result = run_sparsify(g, seed=0, size_bound=300)
        result.check_partition(set(g.nodes))
        assert is_independent_set(g, result.joined)

    def test_decides_most_nodes(self):
        """The Lemma 4.5 contract: few nodes remain."""
        g = graphs.gnp_expected_degree(500, 8.0, seed=6)
        result = run_sparsify(g, seed=0, size_bound=500)
        assert result.details["remaining_fraction"] <= 0.5

    def test_empty_graph(self):
        import networkx as nx

        result = run_sparsify(nx.Graph(), seed=0, size_bound=10)
        assert result.remaining == set()


class TestSection4Compositions:
    @pytest.mark.parametrize(
        "runner",
        [
            algorithm1_constant_average_energy,
            algorithm2_constant_average_energy,
        ],
    )
    def test_valid_mis(self, runner):
        g = graphs.gnp_expected_degree(400, 60.0, seed=7)
        result = runner(g, seed=0)
        report = verify_mis(g, result.mis)
        assert report.independent
        if not result.details["undecided"]:
            assert report.maximal

    def test_average_energy_competitive_with_luby(self):
        """Section 4's headline is asymptotic (O(1) vs Θ(log n) average);
        at simulation scale we check the direction: the augmented
        algorithm's node-averaged energy does not exceed Luby's (mean over
        seeds), and its *growth* with n is flatter (checked in experiment
        E4 over a wider sweep)."""
        n = 1024
        aug_avgs, luby_avgs = [], []
        for seed in range(3):
            g = graphs.gnp_expected_degree(n, 32.0, seed=seed)
            aug_avgs.append(
                algorithm1_constant_average_energy(g, seed=seed).average_energy
            )
            luby_avgs.append(luby_mis(g, seed=seed).average_energy)
        assert sum(aug_avgs) / 3 <= sum(luby_avgs) / 3 + 0.5

    def test_average_energy_stays_flat(self):
        """O(1) node-averaged energy: the mean over seeds barely moves
        across an 8x increase in n (the full fitted curve is experiment E4)."""
        def mean_avg(n, seeds=3):
            total = 0.0
            for seed in range(seeds):
                g = graphs.gnp_expected_degree(n, 32.0, seed=seed)
                total += algorithm1_constant_average_energy(
                    g, seed=seed
                ).average_energy
            return total / seeds

        growth = mean_avg(2048) - mean_avg(256)
        assert growth <= 2.5

    def test_worst_case_energy_not_destroyed(self):
        """The augmentation must keep worst-case energy ~ the plain bound."""
        n = 600
        g = graphs.gnp_expected_degree(n, 24.0, seed=9)
        result = algorithm1_constant_average_energy(g, seed=0)
        assert result.max_energy <= result.rounds

    def test_phase_breakdown_present(self):
        g = graphs.gnp_expected_degree(300, 20.0, seed=10)
        result = algorithm1_constant_average_energy(g, seed=0)
        assert set(result.metrics.phases) == {
            "phase1", "lemma42", "sparsify", "phase2", "phase3",
        }

    def test_independence_across_seeds(self):
        g = graphs.gnp_expected_degree(300, 50.0, seed=11)
        for seed in range(4):
            for runner in (
                algorithm1_constant_average_energy,
                algorithm2_constant_average_energy,
            ):
                result = runner(g, seed=seed)
                assert is_independent_set(g, result.mis)
