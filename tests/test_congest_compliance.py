"""CONGEST compliance: every engine-run algorithm must respect the
``B = O(log n)``-bit message budget, and the bit claims the paper makes for
individual phases must hold (1-bit marks, K-bit execution vectors,
O(log n)-bit counters)."""


from repro import graphs
from repro.baselines import (
    GhaffariProgram,
    ghaffari_mis,
    luby_mis,
    regularized_luby_mis,
)
from repro.congest import Network, default_bit_budget
from repro.core import run_lemma31_iteration, run_phase1_alg1, run_phase2


class TestBudgets:
    def test_luby_messages_tiny(self):
        g = graphs.gnp_expected_degree(200, 20.0, seed=0)
        result = luby_mis(g, seed=0)
        # (mark flag, degree) pairs: a few dozen bits.
        assert result.metrics.max_message_bits <= default_bit_budget(200)

    def test_regularized_luby_single_bit(self):
        g = graphs.gnp_expected_degree(150, 20.0, seed=1)
        result = regularized_luby_mis(g, seed=0)
        assert result.metrics.max_message_bits <= 1

    def test_ghaffari_single_execution_bits(self):
        g = graphs.gnp_expected_degree(150, 15.0, seed=2)
        result = ghaffari_mis(g, seed=0)
        assert result.metrics.max_message_bits <= 3  # one framed bit

    def test_phase1_alg1_single_bit(self):
        g = graphs.gnp_expected_degree(400, 160.0, seed=3)
        result = run_phase1_alg1(g, seed=0, size_bound=400)
        assert result.metrics.max_message_bits <= 1

    def test_phase1_alg2_log_bits(self):
        """The A_v counters are the biggest payloads: O(log n) bits."""
        g = graphs.planted_max_degree(400, 100, seed=4)
        result = run_lemma31_iteration(g, 100, seed=0, size_bound=400)
        assert result.metrics.max_message_bits <= default_bit_budget(400)

    def test_phase2_within_budget(self):
        g = graphs.gnp_expected_degree(300, 16.0, seed=5)
        result = run_phase2(g, seed=0, size_bound=300)
        assert result.metrics.max_message_bits <= default_bit_budget(300)

    def test_parallel_executions_fill_but_fit_budget(self):
        """Θ(log n) executions × ~3 bits must still fit B = Θ(log n)."""
        n = 1024
        g = graphs.gnp(40, 0.2, seed=6)
        executions = 10  # = log2(1024)
        programs = {
            v: GhaffariProgram(iterations=30, executions=executions)
            for v in g.nodes
        }
        network = Network(g, programs, seed=0, size_bound=n)
        network.run(max_rounds=400)
        assert network.max_message_bits <= default_bit_budget(n)
        assert network.max_message_bits >= executions  # actually multi-bit

    def test_budget_scales_with_size_bound(self):
        assert default_bit_budget(2**20) > default_bit_budget(2**10)
