"""Tests for the unmodified regularized-Luby baseline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.analysis import verify_mis
from repro.baselines import regularized_luby_mis
from repro.core import run_phase1_alg1


class TestRegularizedLuby:
    def test_path(self):
        g = graphs.path(20)
        result = regularized_luby_mis(g, seed=0)
        assert verify_mis(g, result.mis).valid

    def test_clique(self):
        g = graphs.clique(12)
        result = regularized_luby_mis(g, seed=1)
        assert len(result.mis) == 1

    def test_empty_graph(self):
        g = graphs.empty_graph(5)
        result = regularized_luby_mis(g, seed=0)
        assert result.mis == set(range(5))

    def test_gnp(self):
        g = graphs.gnp(80, 0.08, seed=2)
        result = regularized_luby_mis(g, seed=0)
        assert verify_mis(g, result.mis).valid

    def test_determinism(self):
        g = graphs.gnp(50, 0.1, seed=3)
        a = regularized_luby_mis(g, seed=4)
        b = regularized_luby_mis(g, seed=4)
        assert a.mis == b.mis

    def test_energy_tracks_time(self):
        """The re-marking baseline never sleeps: max energy ~ rounds."""
        g = graphs.gnp_expected_degree(200, 30.0, seed=5)
        result = regularized_luby_mis(g, seed=0)
        assert result.max_energy >= result.rounds / 2 - 2

    def test_slower_than_luby_but_same_output_contract(self):
        g = graphs.gnp_expected_degree(150, 25.0, seed=6)
        result = regularized_luby_mis(g, seed=0)
        assert verify_mis(g, result.mis).valid

    def test_one_shot_phase_beats_remarking_on_energy(self):
        """The ablation A1 claim, as a unit test."""
        n = 512
        g = graphs.gnp_expected_degree(n, 180.0, seed=7)
        remarking = regularized_luby_mis(g, seed=0)
        one_shot = run_phase1_alg1(g, seed=0, size_bound=n)
        assert one_shot.details["iterations"] >= 1
        assert one_shot.metrics.max_energy < remarking.max_energy


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    p=st.floats(min_value=0.0, max_value=0.5),
    graph_seed=st.integers(min_value=0, max_value=100),
    run_seed=st.integers(min_value=0, max_value=100),
)
def test_regularized_luby_always_valid(n, p, graph_seed, run_seed):
    g = graphs.gnp(n, p, seed=graph_seed)
    result = regularized_luby_mis(g, seed=run_seed)
    assert verify_mis(g, result.mis).valid
