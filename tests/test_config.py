"""Tests for the algorithm configuration and its derived quantities."""

import math

import pytest

from repro.core.config import DEFAULT_CONFIG, log2n, loglog2n


class TestHelpers:
    def test_log2n_clamps(self):
        assert log2n(0) == 1.0
        assert log2n(1024) == 10.0

    def test_loglog2n(self):
        assert loglog2n(2**16) == 4.0
        assert loglog2n(2) >= 1.0


class TestDerivedQuantities:
    def test_phase1_iterations_zero_for_small_delta(self):
        assert DEFAULT_CONFIG.phase1_iterations(1024, 2) == 0

    def test_phase1_iterations_positive_for_dense(self):
        n = 1024
        delta = int(math.log2(n) ** 2 * 8)
        assert DEFAULT_CONFIG.phase1_iterations(n, delta) >= 1

    def test_phase1_truncation_math(self):
        """iterations = floor(log2 Δ - 2·loglog n)."""
        n, delta = 2**16, 2**10
        expected = math.floor(10 - 2 * 4)
        assert DEFAULT_CONFIG.phase1_iterations(n, delta) == expected

    def test_rounds_per_iteration_scales_with_log(self):
        assert DEFAULT_CONFIG.phase1_rounds_per_iteration(
            2**16
        ) > DEFAULT_CONFIG.phase1_rounds_per_iteration(2**8)

    def test_alg2_floor(self):
        n = 2**10
        assert DEFAULT_CONFIG.alg2_degree_floor(n) == pytest.approx(100.0)

    def test_phase3_executions_grow_with_n(self):
        assert DEFAULT_CONFIG.phase3_executions(
            2**20
        ) > DEFAULT_CONFIG.phase3_executions(2**8)

    def test_phase3_iterations_floor(self):
        assert DEFAULT_CONFIG.phase3_iterations(1) >= 4

    def test_phase2_radius_positive(self):
        assert DEFAULT_CONFIG.phase2_radius(2) >= 1


class TestOverrides:
    def test_with_overrides_copies(self):
        custom = DEFAULT_CONFIG.with_overrides(phase1_round_factor=3.0)
        assert custom.phase1_round_factor == 3.0
        assert DEFAULT_CONFIG.phase1_round_factor == 1.0

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.phase1_round_factor = 9.0

    def test_override_changes_derivations(self):
        custom = DEFAULT_CONFIG.with_overrides(phase1_truncation=0.0)
        n, delta = 2**12, 2**8
        assert custom.phase1_iterations(n, delta) > (
            DEFAULT_CONFIG.phase1_iterations(n, delta)
        )

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError):
            DEFAULT_CONFIG.with_overrides(warp_speed=11)
