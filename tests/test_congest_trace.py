"""Tests for engine tracing and sleep diagrams."""

import networkx as nx
import pytest

from repro import graphs
from repro.baselines import LubyProgram
from repro.congest import (
    ChannelError,
    CongestChannel,
    Network,
    NodeProgram,
)


class CountdownProgram(NodeProgram):
    def __init__(self, rounds):
        self.rounds = rounds

    def on_round(self, ctx):
        if ctx.round + 1 >= self.rounds:
            ctx.halt()


class TestNetworkTrace:
    def _traced_run(self, rounds=4, n=3):
        graph = graphs.path(n)
        network = Network(
            graph,
            {v: CountdownProgram(rounds) for v in graph.nodes},
            trace=True,
        )
        network.run()
        return network

    def test_disabled_by_default(self):
        graph = graphs.path(2)
        network = Network(
            graph, {v: CountdownProgram(1) for v in graph.nodes}
        )
        network.run()
        assert network.trace is None

    def test_records_every_round(self):
        network = self._traced_run(rounds=4)
        assert network.trace.rounds == 4

    def test_awake_counts(self):
        network = self._traced_run(rounds=3, n=5)
        assert network.trace.awake_counts() == [5, 5, 5]

    def test_wake_rounds_of_node(self):
        network = self._traced_run(rounds=3)
        assert network.trace.wake_rounds_of(0) == [0, 1, 2]

    def test_message_totals(self):
        graph = graphs.gnp(30, 0.15, seed=0)
        network = Network(
            graph, {v: LubyProgram() for v in graph.nodes}, trace=True
        )
        network.run()
        totals = network.trace.message_totals()
        assert totals["sent"] == network.messages_sent
        assert totals["delivered"] == network.messages_delivered

    def test_sleep_diagram_shape(self):
        network = self._traced_run(rounds=5, n=3)
        diagram = network.trace.sleep_diagram([0, 1, 2])
        lines = diagram.splitlines()
        assert len(lines) == 4  # header + one row per node
        assert "#####" in lines[1]

    def test_sleep_diagram_downsamples(self):
        network = self._traced_run(rounds=50, n=2)
        diagram = network.trace.sleep_diagram([0], width=10)
        row = diagram.splitlines()[1]
        assert row.count("#") == 10

    def test_sleep_diagram_empty(self):
        graph = graphs.path(2)
        network = Network(
            graph, {v: CountdownProgram(1) for v in graph.nodes}, trace=True
        )
        assert "no rounds" in network.trace.sleep_diagram([0])

    def test_scheduled_sleep_visible(self):
        class Sleeper(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 1:
                    ctx.use_wake_schedule([2])

            def on_round(self, ctx):
                if ctx.node == 1 or ctx.round >= 3:
                    ctx.halt()

        graph = graphs.path(2)
        network = Network(
            graph, {v: Sleeper() for v in graph.nodes}, trace=True
        )
        network.run()
        assert network.trace.wake_rounds_of(1) == [2]


class TestIdleSpanRoundTrip:
    """Compact idle spans must expand to exactly the per-round view the
    legacy engine records (satellite of the channel-layer PR)."""

    def _synthetic_pair(self):
        """The same execution recorded both ways: fast (spans) and legacy
        (one explicit record per round, idle rounds absent from records
        only when truly empty — the legacy engine records every round)."""
        from repro.congest import NetworkTrace

        fast = NetworkTrace()
        legacy = NetworkTrace()
        # Round 0: nodes {0, 1} awake, 2 sent / 1 delivered / 1 dropped.
        for trace in (fast, legacy):
            trace.record(0, {0, 1}, 2, 1, 1)
        # Rounds 1..4 idle.
        fast.record_idle(1, 4)
        for r in range(1, 5):
            legacy.record(r, set(), 0, 0, 0)
        # Round 5: node 2 awake.
        for trace in (fast, legacy):
            trace.record(5, {2}, 0, 0, 0)
        # Rounds 6..6: a single-round span.
        fast.record_idle(6, 6)
        legacy.record(6, set(), 0, 0, 0)
        # Round 7: all awake.
        for trace in (fast, legacy):
            trace.record(7, {0, 1, 2}, 3, 3, 0)
        return fast, legacy

    def test_derived_views_match(self):
        fast, legacy = self._synthetic_pair()
        assert fast.rounds == legacy.rounds == 8
        assert fast.awake_counts() == legacy.awake_counts()
        for node in (0, 1, 2):
            assert fast.wake_rounds_of(node) == legacy.wake_rounds_of(node)
        assert fast.message_totals() == legacy.message_totals()
        assert fast.sleep_diagram([0, 1, 2]) == legacy.sleep_diagram([0, 1, 2])

    def test_span_validation(self):
        import pytest

        from repro.congest import NetworkTrace

        with pytest.raises(ValueError):
            NetworkTrace().record_idle(5, 4)

    def test_engine_round_trip_fast_vs_legacy(self):
        """A real gappy run: the engine's compact spans reproduce the legacy
        per-round trace through every derived view."""

        class Gappy(NodeProgram):
            def on_start(self, ctx):
                ctx.use_wake_schedule([2 + 5 * (ctx.node % 2), 20, 33])

            def on_round(self, ctx):
                if ctx.neighbors:
                    ctx.send(ctx.neighbors[0], True)

            def on_receive(self, ctx, messages):
                if ctx.round >= 33:
                    ctx.halt()

        def run(legacy):
            graph = graphs.path(4)
            network = Network(
                graph, {v: Gappy() for v in graph.nodes}, trace=True
            )
            network.run(legacy=legacy)
            return network.trace

        fast, legacy = run(False), run(True)
        assert fast.idle_spans and not legacy.idle_spans  # genuinely compact
        assert fast.rounds == legacy.rounds
        assert fast.awake_counts() == legacy.awake_counts()
        for node in range(4):
            assert fast.wake_rounds_of(node) == legacy.wake_rounds_of(node)
        assert fast.message_totals() == legacy.message_totals()
        assert fast.sleep_diagram(range(4)) == legacy.sleep_diagram(range(4))


class TestStaleInboxViewsAcrossFastForward:
    """Fast-forwarded idle stretches must not resurrect old inbox views.

    A lazy ``_InboxView`` is only valid within the round that minted it:
    the backing slot buffers are recycled at ``finish_round``. The fast
    path skips idle rounds entirely, so a view captured before an idle
    stretch and first *read* at the post-stretch wake must raise — on the
    fast-forwarding engine exactly as on the legacy per-round loop — and
    a view must never survive the channel being re-bound to a new network.
    """

    class _Stasher(NodeProgram):
        def __init__(self):
            self.stashed = None
            self.error = None

        def on_round(self, ctx):
            if ctx.round == 0 and ctx.neighbors:
                ctx.send(ctx.neighbors[0], "ping")

        def on_receive(self, ctx, messages):
            if ctx.round == 0:
                self.stashed = messages  # lazy view, not yet materialized
                ctx.use_wake_schedule([40])  # force a long idle stretch
            elif ctx.round == 40:
                try:
                    list(self.stashed)
                except Exception as error:  # noqa: BLE001 - recorded
                    self.error = error
                ctx.halt()

    @pytest.mark.parametrize("legacy", [False, True])
    def test_view_from_before_idle_stretch_raises(self, legacy):
        graph = nx.path_graph(2)
        programs = {v: self._Stasher() for v in graph.nodes}
        network = Network(graph, programs)
        network.run(legacy=legacy)
        assert network.metrics().rounds == 41
        for node, program in programs.items():
            assert program.stashed is not None, node
            assert isinstance(program.error, ChannelError), (
                f"node {node}: stale inbox view survived the idle "
                f"fast-forward (legacy={legacy})"
            )

    def test_view_does_not_survive_channel_rebind(self):
        """Multi-phase drivers reuse channel instances across networks; a
        view minted against the first network must raise after rebind
        instead of reading the second network's recycled buffers."""
        graph = nx.path_graph(2)
        channel = CongestChannel()
        captured = {}

        class CaptureOnce(NodeProgram):
            def on_round(self, ctx):
                if ctx.round == 0 and ctx.neighbors:
                    ctx.send(ctx.neighbors[0], 1)

            def on_receive(self, ctx, messages):
                captured.setdefault(ctx.node, messages)
                ctx.halt()

        first = Network(
            graph, {v: CaptureOnce() for v in graph.nodes}, channel=channel
        )
        first.run()
        assert set(captured) == {0, 1}

        # Same channel instance, fresh network: round serial keeps rising.
        second = Network(
            graph, {v: CaptureOnce() for v in graph.nodes}, channel=channel
        )
        stale = captured[0]
        with pytest.raises(ChannelError, match="read after its round"):
            list(stale)
