"""Tests for engine tracing and sleep diagrams."""

import networkx as nx

from repro import graphs
from repro.baselines import LubyProgram
from repro.congest import Network, NodeProgram


class CountdownProgram(NodeProgram):
    def __init__(self, rounds):
        self.rounds = rounds

    def on_round(self, ctx):
        if ctx.round + 1 >= self.rounds:
            ctx.halt()


class TestNetworkTrace:
    def _traced_run(self, rounds=4, n=3):
        graph = graphs.path(n)
        network = Network(
            graph,
            {v: CountdownProgram(rounds) for v in graph.nodes},
            trace=True,
        )
        network.run()
        return network

    def test_disabled_by_default(self):
        graph = graphs.path(2)
        network = Network(
            graph, {v: CountdownProgram(1) for v in graph.nodes}
        )
        network.run()
        assert network.trace is None

    def test_records_every_round(self):
        network = self._traced_run(rounds=4)
        assert network.trace.rounds == 4

    def test_awake_counts(self):
        network = self._traced_run(rounds=3, n=5)
        assert network.trace.awake_counts() == [5, 5, 5]

    def test_wake_rounds_of_node(self):
        network = self._traced_run(rounds=3)
        assert network.trace.wake_rounds_of(0) == [0, 1, 2]

    def test_message_totals(self):
        graph = graphs.gnp(30, 0.15, seed=0)
        network = Network(
            graph, {v: LubyProgram() for v in graph.nodes}, trace=True
        )
        network.run()
        totals = network.trace.message_totals()
        assert totals["sent"] == network.messages_sent
        assert totals["delivered"] == network.messages_delivered

    def test_sleep_diagram_shape(self):
        network = self._traced_run(rounds=5, n=3)
        diagram = network.trace.sleep_diagram([0, 1, 2])
        lines = diagram.splitlines()
        assert len(lines) == 4  # header + one row per node
        assert "#####" in lines[1]

    def test_sleep_diagram_downsamples(self):
        network = self._traced_run(rounds=50, n=2)
        diagram = network.trace.sleep_diagram([0], width=10)
        row = diagram.splitlines()[1]
        assert row.count("#") == 10

    def test_sleep_diagram_empty(self):
        graph = graphs.path(2)
        network = Network(
            graph, {v: CountdownProgram(1) for v in graph.nodes}, trace=True
        )
        assert "no rounds" in network.trace.sleep_diagram([0])

    def test_scheduled_sleep_visible(self):
        class Sleeper(NodeProgram):
            def on_start(self, ctx):
                if ctx.node == 1:
                    ctx.use_wake_schedule([2])

            def on_round(self, ctx):
                if ctx.node == 1 or ctx.round >= 3:
                    ctx.halt()

        graph = graphs.path(2)
        network = Network(
            graph, {v: Sleeper() for v in graph.nodes}, trace=True
        )
        network.run()
        assert network.trace.wake_rounds_of(1) == [2]
