"""Fast path ⇔ legacy loop ⇔ channel-layer equivalence regression.

The engine's idle-round fast-forward and cached round loop are pure
optimizations: for every algorithm and workload, outputs, metrics, and
ledger state must be *bit-identical* to the naive one-step-per-round loop
(``Network.run(legacy=True)`` / :func:`repro.congest.legacy_engine`). This
suite locks that in for every registered algorithm on several graph
families, and for hand-built schedules that exercise the tricky corners
(idle gaps, mid-run halts, re-scheduling, truncated ``run_rounds``).

The channel layer adds a second axis: ``CongestChannel(batched=True)``
(flat per-edge buffers, lazy inbox views) must be bit-identical to
``CongestChannel(batched=False)`` — the pre-refactor per-``Message``
delivery loop kept verbatim as the reference semantics — on *both* engine
paths. The four-way matrix {batched, per-message} × {fast, legacy} proves
the batched hot path preserves the seed semantics exactly.
"""

import networkx as nx
import pytest

from repro import graphs
from repro.baselines import LubyProgram
from repro.congest import (
    EnergyLedger,
    Network,
    NodeProgram,
    VectorizationError,
    channel_scope,
    column_state,
    engine_mode,
    legacy_engine,
    reset_vector_stats,
    vector_stats,
)
from repro.congest.network import set_legacy_mode
from repro.harness import (
    ALGORITHMS,
    VECTOR_CAPABLE_ALGORITHMS,
    run_algorithm,
)

FAMILIES = ["gnp_log_degree", "geometric", "grid"]
N = 64


def _metrics_tuple(metrics):
    return (
        metrics.rounds,
        metrics.max_energy,
        metrics.average_energy,
        metrics.total_energy,
        metrics.messages_sent,
        metrics.messages_delivered,
        metrics.messages_dropped,
        metrics.total_message_bits,
        metrics.max_message_bits,
    )


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_algorithms_identical_across_engine_paths(algorithm, family):
    graph = graphs.make_family(family, N, seed=5)

    fast_ledger = EnergyLedger(graph.nodes)
    fast = run_algorithm(algorithm, graph, seed=5, ledger=fast_ledger)
    with legacy_engine():
        legacy_ledger = EnergyLedger(graph.nodes)
        legacy = run_algorithm(algorithm, graph, seed=5, ledger=legacy_ledger)

    assert fast.mis == legacy.mis
    assert _metrics_tuple(fast.metrics) == _metrics_tuple(legacy.metrics)
    assert fast.metrics == legacy.metrics  # includes per-phase breakdowns
    assert fast_ledger.snapshot() == legacy_ledger.snapshot()


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_batched_channel_identical_to_per_message_reference(algorithm, family):
    """Batched per-edge-buffer delivery == the seed per-Message semantics.

    ``congest-per-message`` is the pre-channel-layer delivery loop kept
    verbatim, so equality here (on the fast *and* the legacy engine)
    certifies the batched channel against the original engine bit for bit:
    same outputs, same metrics (message counts, bit totals, maxima), same
    per-node energy ledgers.
    """
    graph = graphs.make_family(family, N, seed=5)

    results = {}
    for channel in ("congest", "congest-per-message"):
        for use_legacy in (False, True):
            ledger = EnergyLedger(graph.nodes)
            with channel_scope(channel):
                if use_legacy:
                    with legacy_engine():
                        result = run_algorithm(
                            algorithm, graph, seed=5, ledger=ledger
                        )
                else:
                    result = run_algorithm(
                        algorithm, graph, seed=5, ledger=ledger
                    )
            results[(channel, use_legacy)] = (result, ledger.snapshot())

    reference, reference_ledger = results[("congest-per-message", True)]
    for key, (result, ledger_snapshot) in results.items():
        assert result.mis == reference.mis, key
        assert _metrics_tuple(result.metrics) == \
            _metrics_tuple(reference.metrics), key
        assert result.metrics == reference.metrics, key
        assert ledger_snapshot == reference_ledger, key


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_three_way_engine_matrix(algorithm, family):
    """fast == legacy == vectorized, bit for bit, for every algorithm.

    The vectorized dense-round path must preserve outputs, metrics,
    per-node ledgers, *and the RNG draw order* (per-node streams are
    consumed in sorted node order exactly as the scalar loops do). For
    algorithms without the capability the vectorized mode degrades to the
    cached loop per-network (forcing it network-wide is covered below), so
    the matrix stays total over the registry.
    """
    graph = graphs.make_family(family, N, seed=5)

    results = {}
    for mode in ("fast", "legacy", "auto"):
        ledger = EnergyLedger(graph.nodes)
        with engine_mode(mode):
            result = run_algorithm(algorithm, graph, seed=5, ledger=ledger)
        results[mode] = (result, ledger.snapshot())

    reference, reference_ledger = results["legacy"]
    for mode, (result, ledger_snapshot) in results.items():
        assert result.mis == reference.mis, mode
        assert _metrics_tuple(result.metrics) == \
            _metrics_tuple(reference.metrics), mode
        assert result.metrics == reference.metrics, mode
        assert ledger_snapshot == reference_ledger, mode


@pytest.mark.parametrize("algorithm", sorted(VECTOR_CAPABLE_ALGORITHMS))
def test_vector_capable_algorithms_never_silently_fall_back(algorithm):
    """A declared capability must actually engage (the CI gate).

    If a refactor broke eligibility (channel type check, heterogeneous
    programs, a renamed hook), the auto path would silently run the cached
    loop and the perf claim would rot; this fails instead.
    """
    graph = graphs.make_family("gnp_log_degree", N, seed=5)
    reset_vector_stats()
    run_algorithm(algorithm, graph, seed=5)
    stats = vector_stats()
    assert stats["networks"] >= 1, f"{algorithm}: runner never built"
    assert stats["rounds"] > 0, (
        f"{algorithm} declares the vectorized capability but executed no "
        f"vectorized rounds (silent fallback to the cached loop)"
    )


@pytest.mark.parametrize("algorithm", ["radio_decay", "algorithm1_avg"])
def test_forced_vectorized_raises_for_incapable_programs(algorithm):
    """Forcing the vectorized engine on an algorithm outside the derived
    capability set must raise, not silently run scalar (radio_decay's
    program has no kernel and runs on the broadcast medium; the
    constant-average-energy wrappers build Lemma 4.2 simulation networks
    whose program has none either)."""
    assert algorithm not in VECTOR_CAPABLE_ALGORITHMS
    graph = graphs.make_family("gnp_log_degree", N, seed=5)
    with engine_mode("vectorized"):
        with pytest.raises(VectorizationError):
            run_algorithm(algorithm, graph, seed=5)


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize(
    "algorithm", ["algorithm1", "algorithm2", "ghaffari2016"]
)
def test_forced_vectorized_pipelines_bit_identical(algorithm, family):
    """The paper's own algorithms now run end-to-end under a *forced*
    vectorized engine (every network they build is kernel-capable), bit
    identical to both scalar paths — including the sleep-scheduled Phase-I
    networks, which the schedule-aware kernels cover."""
    graph = graphs.make_family(family, N, seed=5)

    results = {}
    for mode in ("fast", "legacy", "vectorized"):
        ledger = EnergyLedger(graph.nodes)
        with engine_mode(mode):
            result = run_algorithm(algorithm, graph, seed=5, ledger=ledger)
        results[mode] = (result, ledger.snapshot())

    reference, reference_ledger = results["legacy"]
    for mode, (result, ledger_snapshot) in results.items():
        assert result.mis == reference.mis, mode
        assert _metrics_tuple(result.metrics) == \
            _metrics_tuple(reference.metrics), mode
        assert result.metrics == reference.metrics, mode
        assert ledger_snapshot == reference_ledger, mode


class TestColumnStateEquivalence:
    """Dict-backed legacy state ⇔ schema-declared state columns.

    Programs that declare a ``state_schema()`` normally live in flat numpy
    columns owned by the network (scalar hooks see per-node row views).
    ``column_state(False)`` disables the allocation so every program falls
    back to plain instance attributes — the pre-refactor representation.
    The two representations must be bit-identical on every engine path:
    same outputs, metrics, per-node ledgers, and RNG draw order.
    """

    @staticmethod
    def _run(algorithm, graph, mode, columns):
        ledger = EnergyLedger(graph.nodes)
        with column_state(columns):
            with engine_mode(mode):
                result = run_algorithm(algorithm, graph, seed=5, ledger=ledger)
        return result, ledger.snapshot()

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_column_and_dict_state_identical_across_engines(
        self, algorithm, family
    ):
        graph = graphs.make_family(family, N, seed=5)
        reference, reference_ledger = self._run(
            algorithm, graph, "legacy", columns=False
        )
        for mode in ("fast", "legacy", "auto"):
            for columns in (False, True):
                key = (mode, columns)
                result, ledger_snapshot = self._run(
                    algorithm, graph, mode, columns
                )
                assert result.mis == reference.mis, key
                assert _metrics_tuple(result.metrics) == \
                    _metrics_tuple(reference.metrics), key
                assert result.metrics == reference.metrics, key
                assert ledger_snapshot == reference_ledger, key

    @pytest.mark.parametrize("columns", [False, True])
    @pytest.mark.parametrize("cut", [1, 3, 6, 9])
    def test_truncated_vectorized_resume_matches_in_both_representations(
        self, columns, cut
    ):
        """Mid-cycle truncation: the kernel flush must restore *whichever*
        state representation the programs use, so a scalar continuation
        matches a pure scalar run under dict state and column state alike."""
        graph = graphs.make_family("gnp_log_degree", 96, seed=3)

        def fresh():
            return Network(
                graph, {v: LubyProgram() for v in graph.nodes}, seed=7
            )

        with column_state(columns):
            reference = fresh()
            reference.run(engine="legacy")
            hybrid = fresh()
            hybrid.run_rounds(cut, engine="vectorized")
            assert hybrid.vector_rounds == cut
            hybrid.run(engine="fast")
        assert hybrid.outputs("in_mis") == reference.outputs("in_mis")
        assert hybrid.outputs("decided_round") == \
            reference.outputs("decided_round")
        assert hybrid.metrics() == reference.metrics()
        assert hybrid.ledger.snapshot() == reference.ledger.snapshot()

    def test_fault_keep_masks_identical_across_representations(self):
        """Lossy-channel keep-masks thread through the vectorized path the
        same way whether node state lives in columns or instance dicts."""
        graph = graphs.make_family("gnp_log_degree", 96, seed=3)
        spec = "lossy(drop=0.15,seed=5):congest"

        def measure(mode, columns):
            ledger = EnergyLedger(graph.nodes)
            with column_state(columns):
                with channel_scope(spec):
                    with engine_mode(mode):
                        result = run_algorithm(
                            "luby", graph, seed=5, ledger=ledger
                        )
            return result, ledger.snapshot()

        # Active faults: fast and legacy share one per-message stream; the
        # vectorized path draws per-edge-slot keep masks (its own seeded
        # stream, deterministic but distinct). Column-vs-dict state must be
        # bit-identical *within* every mode regardless.
        for mode in ("fast", "legacy", "vectorized"):
            reference, reference_ledger = measure(mode, columns=False)
            assert reference.metrics.messages_dropped > 0, mode
            result, ledger_snapshot = measure(mode, columns=True)
            assert result.mis == reference.mis, mode
            assert result.metrics == reference.metrics, mode
            assert ledger_snapshot == reference_ledger, mode
        fast, fast_ledger = measure("fast", columns=True)
        legacy, legacy_ledger = measure("legacy", columns=True)
        assert fast.mis == legacy.mis
        assert fast.metrics == legacy.metrics
        assert fast_ledger == legacy_ledger


class TestScheduleAwareKernels:
    """Sleep-schedule (wake-calendar) coverage for the paper's kernels.

    The standard config gives zero Phase-I iterations at test sizes (the
    ``log Δ − 2 log log n`` budget needs huge degrees), so these build the
    phase programs directly with explicit budgets — every node lays down a
    Lemma 2.5 wake calendar and the vectorized engine must follow it.
    """

    FAMILY_SEEDS = [("gnp_log_degree", 3), ("geometric", 9), ("grid", 1)]

    def _alg1_network(self, graph, trace=False):
        from repro.core.phase1_alg1 import Phase1Alg1Program
        from repro.graphs.properties import max_degree

        delta = max_degree(graph)
        return Network(
            graph,
            {
                v: Phase1Alg1Program(4, 8, delta, 10.0)
                for v in graph.nodes
            },
            seed=11,
            trace=trace,
        )

    def _alg2_network(self, graph, trace=False):
        from repro.core.config import DEFAULT_CONFIG
        from repro.core.phase1_alg2 import Phase1Alg2Program
        from repro.graphs.properties import max_degree

        delta = max(2, max_degree(graph))
        return Network(
            graph,
            {
                v: Phase1Alg2Program(delta, 6, DEFAULT_CONFIG)
                for v in graph.nodes
            },
            seed=11,
            trace=trace,
        )

    def _assert_identical(self, make_network, total_rounds):
        for family, seed in self.FAMILY_SEEDS:
            graph = graphs.make_family(family, 96, seed=seed)
            reference = make_network(graph, trace=True)
            reference.run_rounds(total_rounds, engine="legacy")
            vectorized = make_network(graph, trace=True)
            vectorized.run_rounds(total_rounds, engine="vectorized")
            assert vectorized.vector_rounds > 0, family
            key = (family,)
            assert vectorized.outputs("joined") == \
                reference.outputs("joined"), key
            assert vectorized.metrics() == reference.metrics(), key
            assert vectorized.ledger.snapshot() == \
                reference.ledger.snapshot(), key
            # Idle spans and per-round awake sets agree through the
            # calendar-driven kernel rounds.
            assert vectorized.trace.rounds == reference.trace.rounds, key
            assert vectorized.trace.awake_counts() == \
                reference.trace.awake_counts(), key
            assert vectorized.trace.message_totals() == \
                reference.trace.message_totals(), key

    def test_phase1_alg1_wake_calendar_identical(self):
        self._assert_identical(self._alg1_network, 3 * 32)

    def test_phase1_alg2_wake_calendar_identical(self):
        self._assert_identical(self._alg2_network, 4 * 6 + 4)

    @pytest.mark.parametrize("cut", [1, 2, 3, 5, 17, 29])
    def test_phase1_alg1_truncation_resumes_scalar(self, cut):
        """Mid-cycle ``run_rounds`` truncation: the schedule-aware kernel's
        flush must restore program state and remaining calendar so a scalar
        continuation matches a pure scalar run."""
        graph = graphs.make_family("gnp_log_degree", 96, seed=3)
        reference = self._alg1_network(graph)
        reference.run_rounds(3 * 32, engine="legacy")
        hybrid = self._alg1_network(graph)
        hybrid.run_rounds(cut, engine="vectorized")
        hybrid.run_rounds(3 * 32 - cut, engine="fast")
        assert hybrid.outputs("joined") == reference.outputs("joined")
        assert hybrid.metrics() == reference.metrics()
        assert hybrid.ledger.snapshot() == reference.ledger.snapshot()

    @pytest.mark.parametrize("cut", [1, 2, 3, 4, 7, 25])
    def test_phase1_alg2_truncation_resumes_scalar(self, cut):
        total = 4 * 6 + 4
        graph = graphs.make_family("gnp_log_degree", 96, seed=3)
        reference = self._alg2_network(graph)
        reference.run_rounds(total, engine="legacy")
        hybrid = self._alg2_network(graph)
        hybrid.run_rounds(cut, engine="vectorized")
        hybrid.run_rounds(total - cut, engine="fast")
        assert hybrid.outputs("joined") == reference.outputs("joined")
        assert hybrid.metrics() == reference.metrics()
        assert hybrid.ledger.snapshot() == reference.ledger.snapshot()

    @pytest.mark.parametrize("cut", [1, 2, 3, 7])
    def test_ghaffari_truncation_resumes_scalar(self, cut):
        """Mark/join kernel truncation, including mid-iteration (odd cuts)
        and multi-execution columns."""
        from repro.baselines.ghaffari import GhaffariProgram

        graph = graphs.make_family("gnp_log_degree", 96, seed=3)

        def fresh():
            return Network(
                graph,
                {
                    v: GhaffariProgram(iterations=10, executions=3)
                    for v in graph.nodes
                },
                seed=13,
            )

        reference = fresh()
        reference.run(engine="legacy")
        hybrid = fresh()
        hybrid.run_rounds(cut, engine="vectorized")
        assert hybrid.vector_rounds == cut
        hybrid.run(engine="fast")
        assert hybrid.outputs("in_mis") == reference.outputs("in_mis")
        assert hybrid.outputs("status") == reference.outputs("status")
        assert hybrid.metrics() == reference.metrics()
        assert hybrid.ledger.snapshot() == reference.ledger.snapshot()


def test_forced_vectorized_ignores_small_graph_floor():
    """auto skips tiny graphs (numpy overhead), forcing does not."""
    graph = graphs.make_family("gnp_log_degree", 16, seed=5)
    reset_vector_stats()
    run_algorithm("luby", graph, seed=5)  # auto: under the floor
    assert vector_stats()["rounds"] == 0
    reset_vector_stats()
    with engine_mode("vectorized"):
        forced = run_algorithm("luby", graph, seed=5)
    assert vector_stats()["rounds"] > 0
    with engine_mode("legacy"):
        reference = run_algorithm("luby", graph, seed=5)
    assert forced.mis == reference.mis
    assert forced.metrics == reference.metrics


def test_heterogeneous_program_parameters_decline_vectorization():
    """One flat schedule column cannot represent per-node parameters; the
    capability factory must decline so auto mode stays scalar (and stays
    bit-identical) instead of silently applying node 0's schedule."""
    from repro.baselines import RegularizedLubyProgram

    graph = graphs.make_family("gnp_log_degree", N, seed=5)

    def make(mixed):
        return Network(
            graph,
            {
                v: RegularizedLubyProgram(
                    4, 6, delta=(3 + (i % 2) if mixed else 3)
                )
                for i, v in enumerate(sorted(graph.nodes))
            },
            seed=5,
        )

    reset_vector_stats()
    network = make(mixed=True)
    network.run()
    assert network.vector_rounds == 0  # declined, ran scalar
    with pytest.raises(VectorizationError, match="declined"):
        make(mixed=True).run(engine="vectorized")
    legacy = make(mixed=True)
    legacy.run(engine="legacy")
    assert network.outputs("in_mis") == legacy.outputs("in_mis")
    assert network.metrics() == legacy.metrics()
    # Homogeneous parameters still vectorize.
    uniform = make(mixed=False)
    uniform.run()
    assert uniform.vector_rounds > 0


@pytest.mark.parametrize("cut", [5, 6, 7, 8, 9, 10])
def test_vectorized_truncation_resumes_scalar_bit_identically(cut):
    """run_rounds may stop the vectorized path mid-cycle; the flush must
    restore program-instance state (including inbox reconstruction and the
    per-node RNG positions) so a scalar continuation matches a pure run."""
    graph = graphs.make_family("gnp_log_degree", 96, seed=3)

    def fresh():
        return Network(
            graph, {v: LubyProgram() for v in graph.nodes}, seed=7
        )

    reference = fresh()
    reference.run(engine="legacy")

    hybrid = fresh()
    hybrid.run_rounds(cut, engine="vectorized")
    assert hybrid.vector_rounds == cut
    hybrid.run(engine="fast")
    assert hybrid.outputs("in_mis") == reference.outputs("in_mis")
    assert hybrid.outputs("decided_round") == \
        reference.outputs("decided_round")
    assert hybrid.metrics() == reference.metrics()
    assert hybrid.ledger.snapshot() == reference.ledger.snapshot()


class GappySleeper(NodeProgram):
    """Exercises idle gaps, on-the-fly re-scheduling, and mid-run halts."""

    def on_start(self, ctx):
        # Widely spaced, node-dependent wakes: long all-asleep stretches.
        ctx.use_wake_schedule([3 + 7 * (ctx.node % 3), 40, 90 + ctx.node])

    def on_round(self, ctx):
        ctx.output["wakes"] = ctx.output.get("wakes", 0) + 1
        if ctx.neighbors and int(ctx.rng.integers(0, 2)):
            ctx.send(ctx.neighbors[0], ctx.round)

    def on_receive(self, ctx, messages):
        ctx.output["heard"] = ctx.output.get("heard", 0) + len(messages)
        if ctx.round >= 90:
            ctx.halt()
        elif ctx.round >= 40 and ctx.node % 2:
            # Extend the schedule while awake, then halt on the extra wake.
            ctx.use_wake_schedule([ctx.round + 25])


class TestScheduledWorkloads:
    def _run(self, legacy, runner):
        graph = graphs.gnp(24, 0.15, seed=9)
        ledger = EnergyLedger(graph.nodes)
        network = Network(
            graph,
            {v: GappySleeper() for v in graph.nodes},
            seed=3,
            ledger=ledger,
            trace=True,
        )
        runner(network, legacy)
        return network

    def _assert_identical(self, runner):
        fast = self._run(False, runner)
        legacy = self._run(True, runner)
        assert fast.outputs("wakes") == legacy.outputs("wakes")
        assert fast.outputs("heard") == legacy.outputs("heard")
        assert fast.metrics() == legacy.metrics()
        assert fast.ledger.snapshot() == legacy.ledger.snapshot()
        # Trace-derived views agree even though the fast path stores idle
        # stretches as compact spans rather than per-round records.
        assert fast.trace.rounds == legacy.trace.rounds
        assert fast.trace.awake_counts() == legacy.trace.awake_counts()
        for node in fast.contexts:
            assert fast.trace.wake_rounds_of(node) == \
                legacy.trace.wake_rounds_of(node)
        assert fast.trace.message_totals() == legacy.trace.message_totals()
        assert fast.trace.sleep_diagram(sorted(fast.contexts)) == \
            legacy.trace.sleep_diagram(sorted(legacy.contexts))

    def test_run_to_completion(self):
        self._assert_identical(lambda net, legacy: net.run(legacy=legacy))

    def test_run_rounds_truncated_mid_gap(self):
        # 55 rounds ends inside an idle stretch: the fast path must still
        # advance simulated time to exactly the same round.
        self._assert_identical(
            lambda net, legacy: net.run_rounds(55, legacy=legacy)
        )

    def test_run_rounds_then_run(self):
        def runner(net, legacy):
            net.run_rounds(10, legacy=legacy)
            net.run(legacy=legacy)

        self._assert_identical(runner)


def test_set_legacy_mode_restores_enclosing_mode():
    """The boolean toggle must not stomp a 4-way engine-mode scope."""
    from repro.congest import get_engine_mode

    assert get_engine_mode() == "auto"
    with engine_mode("fast"):
        set_legacy_mode(True)
        assert get_engine_mode() == "legacy"
        set_legacy_mode(False)
        assert get_engine_mode() == "fast"  # not reset to "auto"
        set_legacy_mode(False)  # idempotent outside legacy
        assert get_engine_mode() == "fast"
    assert get_engine_mode() == "auto"


def test_module_level_switch():
    graph = nx.path_graph(4)

    class Once(NodeProgram):
        def on_round(self, ctx):
            ctx.output["ran"] = ctx.round
            ctx.halt()

    set_legacy_mode(True)
    try:
        legacy_net = Network(graph, {v: Once() for v in graph.nodes})
        legacy_metrics = legacy_net.run()
    finally:
        set_legacy_mode(False)
    fast_net = Network(graph, {v: Once() for v in graph.nodes})
    assert fast_net.run() == legacy_metrics
    assert fast_net.outputs("ran") == legacy_net.outputs("ran")


def test_pruned_halt_schedules_agree_with_pending_work():
    """A halted node's dead calendar entries must not keep the run alive."""

    class ScheduleThenHalt(NodeProgram):
        def on_start(self, ctx):
            ctx.use_wake_schedule([1, 500_000])

        def on_round(self, ctx):
            ctx.output["woke"] = ctx.round
            ctx.halt()  # round-500000 entry must be pruned here

    graph = nx.path_graph(3)
    for legacy in (False, True):
        network = Network(graph, {v: ScheduleThenHalt() for v in graph.nodes})
        metrics = network.run(max_rounds=10_000, legacy=legacy)
        assert metrics.rounds == 2  # not 500_001, and no limit error
        assert not network.has_pending_work()
