"""Fast path ⇔ legacy loop ⇔ channel-layer equivalence regression.

The engine's idle-round fast-forward and cached round loop are pure
optimizations: for every algorithm and workload, outputs, metrics, and
ledger state must be *bit-identical* to the naive one-step-per-round loop
(``Network.run(legacy=True)`` / :func:`repro.congest.legacy_engine`). This
suite locks that in for every registered algorithm on several graph
families, and for hand-built schedules that exercise the tricky corners
(idle gaps, mid-run halts, re-scheduling, truncated ``run_rounds``).

The channel layer adds a second axis: ``CongestChannel(batched=True)``
(flat per-edge buffers, lazy inbox views) must be bit-identical to
``CongestChannel(batched=False)`` — the pre-refactor per-``Message``
delivery loop kept verbatim as the reference semantics — on *both* engine
paths. The four-way matrix {batched, per-message} × {fast, legacy} proves
the batched hot path preserves the seed semantics exactly.
"""

import networkx as nx
import pytest

from repro import graphs
from repro.congest import (
    EnergyLedger,
    Network,
    NodeProgram,
    channel_scope,
    legacy_engine,
)
from repro.congest.network import set_legacy_mode
from repro.harness import ALGORITHMS, run_algorithm

FAMILIES = ["gnp_log_degree", "geometric", "grid"]
N = 64


def _metrics_tuple(metrics):
    return (
        metrics.rounds,
        metrics.max_energy,
        metrics.average_energy,
        metrics.total_energy,
        metrics.messages_sent,
        metrics.messages_delivered,
        metrics.messages_dropped,
        metrics.total_message_bits,
        metrics.max_message_bits,
    )


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_algorithms_identical_across_engine_paths(algorithm, family):
    graph = graphs.make_family(family, N, seed=5)

    fast_ledger = EnergyLedger(graph.nodes)
    fast = run_algorithm(algorithm, graph, seed=5, ledger=fast_ledger)
    with legacy_engine():
        legacy_ledger = EnergyLedger(graph.nodes)
        legacy = run_algorithm(algorithm, graph, seed=5, ledger=legacy_ledger)

    assert fast.mis == legacy.mis
    assert _metrics_tuple(fast.metrics) == _metrics_tuple(legacy.metrics)
    assert fast.metrics == legacy.metrics  # includes per-phase breakdowns
    assert fast_ledger.snapshot() == legacy_ledger.snapshot()


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_batched_channel_identical_to_per_message_reference(algorithm, family):
    """Batched per-edge-buffer delivery == the seed per-Message semantics.

    ``congest-per-message`` is the pre-channel-layer delivery loop kept
    verbatim, so equality here (on the fast *and* the legacy engine)
    certifies the batched channel against the original engine bit for bit:
    same outputs, same metrics (message counts, bit totals, maxima), same
    per-node energy ledgers.
    """
    graph = graphs.make_family(family, N, seed=5)

    results = {}
    for channel in ("congest", "congest-per-message"):
        for use_legacy in (False, True):
            ledger = EnergyLedger(graph.nodes)
            with channel_scope(channel):
                if use_legacy:
                    with legacy_engine():
                        result = run_algorithm(
                            algorithm, graph, seed=5, ledger=ledger
                        )
                else:
                    result = run_algorithm(
                        algorithm, graph, seed=5, ledger=ledger
                    )
            results[(channel, use_legacy)] = (result, ledger.snapshot())

    reference, reference_ledger = results[("congest-per-message", True)]
    for key, (result, ledger_snapshot) in results.items():
        assert result.mis == reference.mis, key
        assert _metrics_tuple(result.metrics) == \
            _metrics_tuple(reference.metrics), key
        assert result.metrics == reference.metrics, key
        assert ledger_snapshot == reference_ledger, key


class GappySleeper(NodeProgram):
    """Exercises idle gaps, on-the-fly re-scheduling, and mid-run halts."""

    def on_start(self, ctx):
        # Widely spaced, node-dependent wakes: long all-asleep stretches.
        ctx.use_wake_schedule([3 + 7 * (ctx.node % 3), 40, 90 + ctx.node])

    def on_round(self, ctx):
        ctx.output["wakes"] = ctx.output.get("wakes", 0) + 1
        if ctx.neighbors and int(ctx.rng.integers(0, 2)):
            ctx.send(ctx.neighbors[0], ctx.round)

    def on_receive(self, ctx, messages):
        ctx.output["heard"] = ctx.output.get("heard", 0) + len(messages)
        if ctx.round >= 90:
            ctx.halt()
        elif ctx.round >= 40 and ctx.node % 2:
            # Extend the schedule while awake, then halt on the extra wake.
            ctx.use_wake_schedule([ctx.round + 25])


class TestScheduledWorkloads:
    def _run(self, legacy, runner):
        graph = graphs.gnp(24, 0.15, seed=9)
        ledger = EnergyLedger(graph.nodes)
        network = Network(
            graph,
            {v: GappySleeper() for v in graph.nodes},
            seed=3,
            ledger=ledger,
            trace=True,
        )
        runner(network, legacy)
        return network

    def _assert_identical(self, runner):
        fast = self._run(False, runner)
        legacy = self._run(True, runner)
        assert fast.outputs("wakes") == legacy.outputs("wakes")
        assert fast.outputs("heard") == legacy.outputs("heard")
        assert fast.metrics() == legacy.metrics()
        assert fast.ledger.snapshot() == legacy.ledger.snapshot()
        # Trace-derived views agree even though the fast path stores idle
        # stretches as compact spans rather than per-round records.
        assert fast.trace.rounds == legacy.trace.rounds
        assert fast.trace.awake_counts() == legacy.trace.awake_counts()
        for node in fast.contexts:
            assert fast.trace.wake_rounds_of(node) == \
                legacy.trace.wake_rounds_of(node)
        assert fast.trace.message_totals() == legacy.trace.message_totals()
        assert fast.trace.sleep_diagram(sorted(fast.contexts)) == \
            legacy.trace.sleep_diagram(sorted(legacy.contexts))

    def test_run_to_completion(self):
        self._assert_identical(lambda net, legacy: net.run(legacy=legacy))

    def test_run_rounds_truncated_mid_gap(self):
        # 55 rounds ends inside an idle stretch: the fast path must still
        # advance simulated time to exactly the same round.
        self._assert_identical(
            lambda net, legacy: net.run_rounds(55, legacy=legacy)
        )

    def test_run_rounds_then_run(self):
        def runner(net, legacy):
            net.run_rounds(10, legacy=legacy)
            net.run(legacy=legacy)

        self._assert_identical(runner)


def test_module_level_switch():
    graph = nx.path_graph(4)

    class Once(NodeProgram):
        def on_round(self, ctx):
            ctx.output["ran"] = ctx.round
            ctx.halt()

    set_legacy_mode(True)
    try:
        legacy_net = Network(graph, {v: Once() for v in graph.nodes})
        legacy_metrics = legacy_net.run()
    finally:
        set_legacy_mode(False)
    fast_net = Network(graph, {v: Once() for v in graph.nodes})
    assert fast_net.run() == legacy_metrics
    assert fast_net.outputs("ran") == legacy_net.outputs("ran")


def test_pruned_halt_schedules_agree_with_pending_work():
    """A halted node's dead calendar entries must not keep the run alive."""

    class ScheduleThenHalt(NodeProgram):
        def on_start(self, ctx):
            ctx.use_wake_schedule([1, 500_000])

        def on_round(self, ctx):
            ctx.output["woke"] = ctx.round
            ctx.halt()  # round-500000 entry must be pruned here

    graph = nx.path_graph(3)
    for legacy in (False, True):
        network = Network(graph, {v: ScheduleThenHalt() for v in graph.nodes})
        metrics = network.run(max_rounds=10_000, legacy=legacy)
        assert metrics.rounds == 2  # not 500_001, and no limit error
        assert not network.has_pending_work()
