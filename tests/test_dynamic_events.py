"""Tests for churn-event streams: validity, determinism, application."""

import networkx as nx
import pytest

from repro import graphs
from repro.dynamic import (
    EDGE_ADD,
    EDGE_REMOVE,
    NODE_ADD,
    NODE_REMOVE,
    GraphEvent,
    adversarial_hub_deletion,
    apply_epoch,
    apply_event,
    battery_deaths,
    edge_churn,
    node_growth,
    poisson_link_flaps,
    touched_nodes,
)


class TestGraphEvent:
    def test_edge_event_needs_two_endpoints(self):
        with pytest.raises(ValueError):
            GraphEvent(EDGE_ADD, 1)

    def test_node_event_takes_one(self):
        with pytest.raises(ValueError):
            GraphEvent(NODE_REMOVE, 1, 2)

    def test_no_self_loops(self):
        with pytest.raises(ValueError):
            GraphEvent(EDGE_ADD, 3, 3)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            GraphEvent("teleport", 1)

    def test_endpoints(self):
        assert GraphEvent(EDGE_ADD, 1, 2).endpoints == (1, 2)
        assert GraphEvent(NODE_ADD, 7).endpoints == (7,)


class TestApply:
    def test_apply_edge_add_and_remove(self):
        graph = graphs.empty_graph(3)
        apply_event(graph, GraphEvent(EDGE_ADD, 0, 1))
        assert graph.has_edge(0, 1)
        apply_event(graph, GraphEvent(EDGE_REMOVE, 0, 1))
        assert not graph.has_edge(0, 1)

    def test_apply_node_lifecycle(self):
        graph = graphs.path(3)
        apply_event(graph, GraphEvent(NODE_ADD, 10))
        assert 10 in graph
        apply_event(graph, GraphEvent(NODE_REMOVE, 1))
        assert 1 not in graph and graph.number_of_edges() == 0

    def test_invalid_preconditions_raise(self):
        graph = graphs.path(3)
        with pytest.raises(ValueError):
            apply_event(graph, GraphEvent(EDGE_ADD, 0, 1))  # already there
        with pytest.raises(ValueError):
            apply_event(graph, GraphEvent(EDGE_REMOVE, 0, 2))  # not there
        with pytest.raises(KeyError):
            apply_event(graph, GraphEvent(EDGE_ADD, 0, 99))  # missing node
        with pytest.raises(ValueError):
            apply_event(graph, GraphEvent(NODE_ADD, 2))  # already there
        with pytest.raises(KeyError):
            apply_event(graph, GraphEvent(NODE_REMOVE, 99))  # not there

    def test_touched_nodes(self):
        epoch = [GraphEvent(EDGE_ADD, 4, 2), GraphEvent(NODE_REMOVE, 2)]
        assert touched_nodes(epoch) == [2, 4]


ALL_GENERATORS = {
    "edge_churn": lambda g, seed: edge_churn(g, 5, 4, seed=seed),
    "poisson_link_flaps": lambda g, seed: poisson_link_flaps(
        g, 5, rate=3.0, seed=seed
    ),
    "battery_deaths": lambda g, seed: battery_deaths(g, 5, 2, seed=seed),
    "node_growth": lambda g, seed: node_growth(g, 5, 2, 2, seed=seed),
    "adversarial_hub_deletion": lambda g, seed: adversarial_hub_deletion(g, 5, 1),
}


@pytest.mark.parametrize("name", sorted(ALL_GENERATORS))
class TestGenerators:
    def test_deterministic_in_seed(self, name):
        graph = graphs.random_geometric(40, seed=7)
        make = ALL_GENERATORS[name]
        assert make(graph, 123) == make(graph, 123)

    def test_events_replay_cleanly(self, name):
        """Every emitted event is valid at its application point."""
        graph = graphs.random_geometric(40, seed=7)
        work = graph.copy()
        for epoch in ALL_GENERATORS[name](graph, 5):
            apply_epoch(work, epoch)  # raises on any invalid event
        assert work.number_of_nodes() >= 1

    def test_generator_does_not_mutate_input(self, name):
        graph = graphs.random_geometric(40, seed=7)
        reference = graph.copy()
        ALL_GENERATORS[name](graph, 9)
        assert nx.utils.graphs_equal(graph, reference)


class TestGeneratorShapes:
    def test_battery_deaths_removes_distinct_nodes(self):
        graph = graphs.random_geometric(30, seed=1)
        timeline = battery_deaths(graph, 4, deaths_per_epoch=3, seed=2)
        victims = [e.u for epoch in timeline for e in epoch]
        assert len(victims) == len(set(victims)) == 12
        assert all(v in graph for v in victims)

    def test_battery_deaths_never_empties_graph(self):
        graph = graphs.path(4)
        timeline = battery_deaths(graph, 10, deaths_per_epoch=3, seed=0)
        assert sum(len(epoch) for epoch in timeline) == 3  # stops at 1 node

    def test_node_growth_ids_are_fresh(self):
        graph = graphs.path(5)
        timeline = node_growth(graph, 3, joins_per_epoch=2, seed=0)
        joins = [
            e.u for epoch in timeline for e in epoch if e.kind == NODE_ADD
        ]
        assert joins == list(range(5, 11))

    def test_hub_deletion_targets_max_degree(self):
        graph = graphs.star(10)
        (first, *_), = adversarial_hub_deletion(graph, 1, 1)
        assert first.kind == NODE_REMOVE and first.u == 0  # the hub

    def test_negative_parameters_rejected(self):
        graph = graphs.path(4)
        with pytest.raises(ValueError):
            edge_churn(graph, -1)
        with pytest.raises(ValueError):
            battery_deaths(graph, 3, deaths_per_epoch=-2)
        with pytest.raises(ValueError):
            poisson_link_flaps(graph, 3, rate=-1.0)
        with pytest.raises(ValueError):
            node_growth(graph, 3, joins_per_epoch=-1)
        with pytest.raises(ValueError):
            adversarial_hub_deletion(graph, 3, hubs_per_epoch=-1)


class TestGraphArraysInvalidation:
    """Events must never leave a stale CSR snapshot behind.

    ``graph_arrays`` parks the CSR in the graph's ``__networkx_cache__``;
    ``apply_event`` must evict it so the next vectorized run rebuilds from
    the mutated topology instead of replaying stale adjacency.
    """

    @staticmethod
    def _arrays(graph):
        from types import SimpleNamespace

        from repro.congest.vectorized import graph_arrays

        # Fresh stand-in network each call: only the per-graph cache in
        # __networkx_cache__ can make two calls return the same object.
        return graph_arrays(SimpleNamespace(graph=graph))

    def test_static_graph_reuses_cached_csr(self):
        graph = nx.path_graph(6)
        assert self._arrays(graph) is self._arrays(graph)

    def test_edge_insert_drops_cached_csr(self):
        graph = nx.path_graph(6)
        before = self._arrays(graph)
        assert 5 not in set(before.neighbors(0))
        apply_event(graph, GraphEvent(EDGE_ADD, 0, 5))
        after = self._arrays(graph)
        assert after is not before
        assert 5 in set(after.neighbors(0))

    def test_node_remove_drops_cached_csr(self):
        graph = nx.path_graph(6)
        before = self._arrays(graph)
        assert 3 in before
        apply_event(graph, GraphEvent(NODE_REMOVE, 3))
        after = self._arrays(graph)
        assert after is not before
        assert 3 not in after
        assert after.number_of_nodes() == 5

    def test_epoch_of_mixed_events_yields_fresh_csr(self):
        graph = nx.path_graph(6)
        before = self._arrays(graph)
        apply_epoch(
            graph,
            [
                GraphEvent(EDGE_REMOVE, 2, 3),
                GraphEvent(NODE_ADD, 6),
                GraphEvent(EDGE_ADD, 6, 0),
            ],
        )
        after = self._arrays(graph)
        assert after is not before
        assert 3 not in set(after.neighbors(2))
        assert 0 in set(after.neighbors(6))
