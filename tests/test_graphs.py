"""Tests for graph generators and property helpers."""

import networkx as nx
import pytest

from repro import graphs


class TestGenerators:
    def test_empty_graph_has_no_edges(self):
        g = graphs.empty_graph(5)
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 0

    def test_path_and_cycle(self):
        assert graphs.path(4).number_of_edges() == 3
        assert graphs.cycle(4).number_of_edges() == 4

    def test_cycle_too_small_rejected(self):
        with pytest.raises(ValueError):
            graphs.cycle(2)

    def test_star_degrees(self):
        g = graphs.star(10)
        assert graphs.max_degree(g) == 9
        assert g.number_of_nodes() == 10

    def test_clique_edge_count(self):
        g = graphs.clique(6)
        assert g.number_of_edges() == 15

    def test_grid_nodes_are_ints(self):
        g = graphs.grid_2d(3, 4)
        assert g.number_of_nodes() == 12
        assert all(isinstance(v, int) for v in g.nodes)

    def test_balanced_tree_size(self):
        g = graphs.balanced_tree(2, 3)
        assert g.number_of_nodes() == 15

    def test_caterpillar_structure(self):
        g = graphs.caterpillar(spine=3, legs_per_node=2)
        assert g.number_of_nodes() == 9
        assert nx.is_tree(g)

    def test_gnp_determinism(self):
        g1 = graphs.gnp(50, 0.1, seed=3)
        g2 = graphs.gnp(50, 0.1, seed=3)
        assert set(g1.edges) == set(g2.edges)

    def test_gnp_seed_changes_graph(self):
        g1 = graphs.gnp(50, 0.2, seed=1)
        g2 = graphs.gnp(50, 0.2, seed=2)
        assert set(g1.edges) != set(g2.edges)

    def test_gnp_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            graphs.gnp(10, 1.5)

    def test_gnp_keeps_isolated_nodes(self):
        g = graphs.gnp(30, 0.0, seed=0)
        assert g.number_of_nodes() == 30

    def test_gnp_expected_degree(self):
        g = graphs.gnp_expected_degree(400, 10.0, seed=1)
        mean_degree = 2 * g.number_of_edges() / g.number_of_nodes()
        assert 5.0 < mean_degree < 15.0

    def test_random_regular_is_regular(self):
        g = graphs.random_regular(20, 4, seed=5)
        assert set(d for _, d in g.degree) == {4}

    def test_random_regular_parity_rejected(self):
        with pytest.raises(ValueError):
            graphs.random_regular(5, 3)

    def test_random_geometric_default_radius_connects(self):
        g = graphs.random_geometric(200, seed=4)
        assert nx.is_connected(g)

    def test_barabasi_albert_heavy_tail(self):
        g = graphs.barabasi_albert(300, 3, seed=2)
        assert graphs.max_degree(g) > 10

    def test_barabasi_albert_small_n_falls_back_to_clique(self):
        g = graphs.barabasi_albert(3, 3, seed=0)
        assert g.number_of_edges() == 3

    def test_disjoint_cliques(self):
        g = graphs.disjoint_cliques(4, 5)
        sizes = graphs.component_sizes(g)
        assert sizes == [5, 5, 5, 5]

    def test_planted_max_degree(self):
        g = graphs.planted_max_degree(100, 9, seed=0)
        assert graphs.max_degree(g) <= 9

    def test_family_registry(self):
        for name in graphs.FAMILIES:
            g = graphs.make_family(name, 64, seed=0)
            assert g.number_of_nodes() >= 1

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            graphs.make_family("nope", 10)


class TestProperties:
    def test_max_degree_empty(self):
        assert graphs.max_degree(nx.Graph()) == 0

    def test_component_sizes_sorted(self):
        g = graphs.disjoint_cliques(2, 3)
        g.add_node(99)
        assert graphs.component_sizes(g) == [3, 3, 1]

    def test_remove_closed_neighborhoods(self):
        g = graphs.star(5)  # hub 0, leaves 1..4
        residual = graphs.remove_closed_neighborhoods(g, {0})
        assert residual.number_of_nodes() == 0

    def test_remove_closed_neighborhoods_partial(self):
        g = graphs.path(5)
        residual = graphs.remove_closed_neighborhoods(g, {0})
        assert set(residual.nodes) == {2, 3, 4}

    def test_closed_neighborhood(self):
        g = graphs.path(4)
        assert graphs.closed_neighborhood(g, {1}) == {0, 1, 2}

    def test_degrees_within(self):
        g = graphs.clique(4)
        degs = graphs.degrees_within(g, {0, 1, 2})
        assert degs == {0: 2, 1: 2, 2: 2}

    def test_eccentricity_upper_bound_path(self):
        g = graphs.path(10)
        bound = graphs.eccentricity_upper_bound(g)
        assert bound >= 9  # true diameter
        assert bound <= 18  # 2x bound

    def test_induced_subgraph_is_detached(self):
        g = graphs.path(4)
        sub = graphs.induced_subgraph(g, {0, 1})
        sub.add_edge(0, 99)
        assert 99 not in g
