"""Spot checks of the paper's internal invariants and failure injection.

The proofs of Lemmas 2.2/2.3 maintain two invariants over Phase I; we
cannot observe them per-iteration from outside the engine run, but their
consequences at phase end are checkable:

* B(T): few active non-spoiled neighbors (the degree really halved), and
* A(T): the number of *sampled* (hence potentially spoiled) neighbors per
  node is O(iterations · log n).

The failure-injection tests feed each phase inputs that violate its
intended regime and check it degrades gracefully instead of breaking the
output contract.
"""

import math

import networkx as nx

from repro import graphs
from repro.analysis import is_independent_set
from repro.congest import EnergyLedger, Network
from repro.core import run_phase1_alg1, run_phase2, run_phase3
from repro.core.config import DEFAULT_CONFIG
from repro.core.phase1_alg1 import Phase1Alg1Program
from repro.graphs.properties import max_degree


class TestPhase1Invariants:
    def _run_programs(self, graph, n=None):
        n = n or graph.number_of_nodes()
        delta = max_degree(graph)
        iterations = DEFAULT_CONFIG.phase1_iterations(n, delta)
        rounds = DEFAULT_CONFIG.phase1_rounds_per_iteration(n)
        assert iterations >= 1, "test graph too sparse to exercise Phase I"
        programs = {
            v: Phase1Alg1Program(iterations, rounds, delta, 10.0)
            for v in graph.nodes
        }
        network = Network(graph, programs, seed=0)
        network.run_rounds(3 * iterations * rounds)
        return programs, iterations

    def test_invariant_a_sampled_neighbors_bounded(self):
        """A(T)'s observable form: per node, O(iterations · log n) sampled
        neighbors."""
        n = 600
        graph = graphs.gnp_expected_degree(n, 250.0, seed=1)
        programs, iterations = self._run_programs(graph, n)
        sampled = {
            v for v, p in programs.items() if p.marked_round is not None
        }
        bound = 8 * (iterations + 1) * math.log2(n)
        for node in graph.nodes:
            sampled_neighbors = sum(
                1 for u in graph.neighbors(node) if u in sampled
            )
            assert sampled_neighbors <= bound

    def test_marked_round_is_one_shot(self):
        """No node ever acts in more than one round (the key modification)."""
        graph = graphs.gnp_expected_degree(400, 160.0, seed=2)
        programs, _ = self._run_programs(graph, 400)
        for program in programs.values():
            if program.joined:
                assert program.marked_round is not None

    def test_joiners_never_adjacent(self):
        graph = graphs.gnp_expected_degree(400, 160.0, seed=3)
        programs, _ = self._run_programs(graph, 400)
        joined = {v for v, p in programs.items() if p.joined}
        assert is_independent_set(graph, joined)


class TestFailureInjection:
    def test_phase1_on_clique(self):
        """Max-degree extreme: a clique (Δ = n-1)."""
        graph = graphs.clique(64)
        result = run_phase1_alg1(graph, seed=0)
        result.check_partition(set(graph.nodes))
        assert is_independent_set(graph, result.joined)

    def test_phase1_on_star(self):
        """Extremely skewed degrees."""
        graph = graphs.star(300)
        result = run_phase1_alg1(graph, seed=0)
        result.check_partition(set(graph.nodes))

    def test_phase2_on_high_degree_input(self):
        """Phase II assumes polylog degree, but must survive worse."""
        graph = graphs.gnp_expected_degree(300, 60.0, seed=4)
        result = run_phase2(graph, seed=0, size_bound=300)
        result.check_partition(set(graph.nodes))
        assert is_independent_set(graph, result.joined)

    def test_phase3_on_a_single_huge_component(self):
        """Phase III assumes small components; give it one big one."""
        from repro.cluster import singleton_clusters

        graph = graphs.gnp(120, 0.08, seed=5)
        component = max(
            nx.connected_components(graph), key=lambda c: (len(c), min(c))
        )
        sub = graph.subgraph(component).copy()
        state = singleton_clusters(sub)
        result = run_phase3([state], seed=0, size_bound=120)
        assert is_independent_set(sub, result.joined)

    def test_phase3_retry_path(self):
        """With zero execution iterations every attempt fails: the retry
        loop must exhaust gracefully and report the failure."""
        from repro.cluster import singleton_clusters

        graph = graphs.clique(6)
        state = singleton_clusters(graph)
        config = DEFAULT_CONFIG.with_overrides(
            phase3_iteration_factor=0.0, phase3_retries=1
        )
        # factor 0 still yields the minimum of 4 iterations, so instead
        # starve the executions another way: 1 execution, 4 iterations on a
        # clique usually succeeds — force failure via 0 retries and a
        # adversarial seed scan.
        result = run_phase3(
            [state], seed=0, size_bound=1000, config=config
        )
        # Whether or not it failed, the contract must hold:
        result.check_partition(set(graph.nodes))
        assert is_independent_set(graph, result.joined)

    def test_ledger_conservation_across_phases(self):
        """The shared ledger equals the sum of per-phase energies."""
        graph = graphs.gnp_expected_degree(200, 40.0, seed=6)
        ledger = EnergyLedger(graph.nodes)
        p1 = run_phase1_alg1(graph, seed=0, ledger=ledger, size_bound=200)
        residual = graph.subgraph(p1.remaining).copy()
        p2 = run_phase2(residual, seed=0, ledger=ledger, size_bound=200)
        assert ledger.total_energy() == (
            p1.metrics.total_energy + p2.metrics.total_energy
        )
