"""Tests for incremental MIS repair: invariants, locality, accounting."""

import pytest

from repro import graphs
from repro.analysis import verify_mis
from repro.congest import EnergyLedger
from repro.dynamic import (
    EDGE_ADD,
    EDGE_REMOVE,
    NODE_ADD,
    NODE_REMOVE,
    GraphEvent,
    MISMaintainer,
)


def assert_valid(maintainer):
    report = verify_mis(maintainer.graph, maintainer.mis)
    assert report.independent and report.maximal


class TestConstruction:
    def test_initial_election_is_valid(self):
        maintainer = MISMaintainer(graphs.random_geometric(50, seed=3), "luby")
        assert_valid(maintainer)
        assert maintainer.initial.epoch == 0
        assert maintainer.initial.recomputed
        assert maintainer.initial.energy > 0

    def test_empty_graph_rejected(self):
        import networkx as nx

        with pytest.raises(ValueError):
            MISMaintainer(nx.Graph(), "luby")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            MISMaintainer(graphs.path(4), "luby", strategy="lazy")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError):
            MISMaintainer(graphs.path(4), "quantum_mis")

    def test_callable_algorithm_accepted(self):
        from repro.baselines import luby_mis

        maintainer = MISMaintainer(graphs.path(6), luby_mis)
        assert maintainer.algorithm_name == "luby_mis"
        assert_valid(maintainer)


class TestEdgeEvents:
    def test_conflict_edge_repaired(self):
        """Wiring two MIS nodes together must drop/re-decide locally."""
        maintainer = MISMaintainer(graphs.empty_graph(2), "luby")
        assert maintainer.mis == {0, 1}  # isolated nodes all join
        report = maintainer.apply_epoch([GraphEvent(EDGE_ADD, 0, 1)])
        assert_valid(maintainer)
        assert len(maintainer.mis) == 1
        assert report.repair_region >= 1
        assert report.mis_churn >= 1

    def test_edge_between_decided_nodes_is_free(self):
        """An edge from an MIS node to a dominated node needs no repair."""
        maintainer = MISMaintainer(graphs.path(2), "luby")
        dominated = next(v for v in (0, 1) if v not in maintainer.mis)
        maintainer.apply_epoch([GraphEvent(NODE_ADD, 2)])
        assert 2 in maintainer.mis  # isolated newcomer elects itself
        report = maintainer.apply_epoch([GraphEvent(EDGE_ADD, dominated, 2)])
        assert report.repair_region == 0
        assert report.mis_churn == 0
        assert_valid(maintainer)

    def test_edge_removal_uncovers(self):
        """Cutting a dominated node from its only dominator re-elects it."""
        maintainer = MISMaintainer(graphs.path(2), "luby")
        report = maintainer.apply_epoch([GraphEvent(EDGE_REMOVE, 0, 1)])
        assert_valid(maintainer)
        assert maintainer.mis == {0, 1}  # both endpoints now isolated
        assert report.repair_region == 1


class TestNodeEvents:
    def test_isolated_join_enters_mis(self):
        maintainer = MISMaintainer(graphs.path(4), "luby")
        report = maintainer.apply_epoch([GraphEvent(NODE_ADD, 99)])
        assert 99 in maintainer.mis
        assert report.repair_region == 1
        assert_valid(maintainer)

    def test_join_with_attachment_is_dominated(self):
        maintainer = MISMaintainer(graphs.star(5), "luby")
        member = min(maintainer.mis)
        report = maintainer.apply_epoch(
            [GraphEvent(NODE_ADD, 99), GraphEvent(EDGE_ADD, member, 99)]
        )
        assert 99 not in maintainer.mis  # its MIS neighbor covers it
        assert report.repair_region == 0
        assert_valid(maintainer)

    def test_mis_node_removal_repairs_neighborhood(self):
        maintainer = MISMaintainer(graphs.clique(5), "luby")
        (member,) = maintainer.mis  # a clique's MIS is one node
        report = maintainer.apply_epoch([GraphEvent(NODE_REMOVE, member)])
        assert_valid(maintainer)
        assert len(maintainer.mis) == 1  # the 4-clique re-elects one node
        assert report.repair_region == 4

    def test_non_mis_node_removal_is_free(self):
        maintainer = MISMaintainer(graphs.star(6), "luby")
        assert maintainer.mis == {1, 2, 3, 4, 5}  # Luby elects the leaves
        report = maintainer.apply_epoch([GraphEvent(NODE_REMOVE, 0)])
        assert maintainer.mis == {1, 2, 3, 4, 5}
        assert report.repair_region == 0
        assert_valid(maintainer)


class TestLocality:
    def test_repair_stays_near_update(self):
        """A single leaf cut on a long path repairs O(1) nodes, not O(n)."""
        maintainer = MISMaintainer(graphs.path(200), "luby", seed=0)
        report = maintainer.apply_epoch([GraphEvent(EDGE_REMOVE, 0, 1)])
        assert_valid(maintainer)
        assert report.probed <= 6
        assert report.repair_region <= 3

    def test_empty_epoch_is_free(self):
        maintainer = MISMaintainer(graphs.path(10), "luby")
        before = set(maintainer.mis)
        report = maintainer.apply_epoch([])
        assert report.energy == 0 and report.rounds == 0
        assert maintainer.mis == before


class TestStrategiesAndLedger:
    def test_full_recompute_matches_invariant(self):
        maintainer = MISMaintainer(
            graphs.random_geometric(40, seed=5), "luby",
            strategy="full_recompute",
        )
        maintainer.apply_epoch([GraphEvent(NODE_REMOVE, 0)])
        assert_valid(maintainer)

    def test_shared_ledger_accumulates(self):
        graph = graphs.random_geometric(30, seed=2)
        ledger = EnergyLedger(graph.nodes)
        maintainer = MISMaintainer(graph, "luby", ledger=ledger)
        after_init = ledger.total_energy()
        assert after_init > 0
        maintainer.apply_epoch([GraphEvent(NODE_REMOVE, 0)])
        assert ledger.total_energy() >= after_init

    def test_departed_nodes_keep_their_energy(self):
        maintainer = MISMaintainer(graphs.path(5), "luby")
        spent = maintainer.ledger.awake_rounds(2)
        maintainer.apply_epoch([GraphEvent(NODE_REMOVE, 2)])
        assert maintainer.ledger.awake_rounds(2) == spent

    def test_joined_nodes_are_tracked(self):
        maintainer = MISMaintainer(graphs.path(5), "luby")
        maintainer.apply_epoch([GraphEvent(NODE_ADD, 50)])
        assert maintainer.ledger.awake_rounds(50) > 0  # probed + elected

    def test_deterministic_across_runs(self):
        def run():
            maintainer = MISMaintainer(
                graphs.random_geometric(30, seed=4), "algorithm1", seed=9
            )
            maintainer.apply_epoch([GraphEvent(NODE_REMOVE, 3)])
            maintainer.apply_epoch([GraphEvent(NODE_ADD, 77)])
            return (
                sorted(maintainer.mis),
                maintainer.total_rounds,
                maintainer.ledger.snapshot(),
            )

        assert run() == run()

    def test_repairs_bill_at_deployment_scale(self):
        """Every registered algorithm must accept ``size_bound`` so repair
        sub-runs scale their schedules with the deployment size, not the
        (tiny) repair region — and the explicit bound must be a no-op when
        it equals the graph's own size."""
        from repro.core import algorithm1
        from repro.harness import ALGORITHMS

        graph = graphs.random_geometric(24, seed=6)
        for name in ALGORITHMS:
            maintainer = MISMaintainer(graph, name)
            assert maintainer._accepts_size_bound, name
        default = algorithm1(graph, seed=0)
        explicit = algorithm1(
            graph, seed=0, size_bound=graph.number_of_nodes()
        )
        assert default.mis == explicit.mis
        assert default.rounds == explicit.rounds

    def test_algorithm_kwargs_forwarded(self):
        from repro.core import AlgorithmConfig

        config = AlgorithmConfig()
        maintainer = MISMaintainer(
            graphs.path(6), "algorithm1",
            algorithm_kwargs={"config": config},
        )
        assert_valid(maintainer)


class TestEpochSeedDerivation:
    """The per-epoch sub-seed must be explicit and platform-stable.

    ``_epoch_seed`` hashes the (seed, epoch) pair through SHA-256 over a
    fixed ascii encoding: no salted ``hash()``, no word-size-dependent
    arithmetic, so a master seed reproduces the same repair sequence on
    every platform/python/process. The pins below are the contract — if
    they ever change, existing recorded timelines stop being replayable.
    """

    def test_pinned_values(self):
        from repro.dynamic.maintainer import _epoch_seed

        assert _epoch_seed(0, 0) == 1141317373
        assert _epoch_seed(0, 1) == 637424418
        assert _epoch_seed(7, 0) == 952853752
        assert _epoch_seed(7, 12) == 814646644

    def test_in_range_and_spread(self):
        from repro.dynamic.maintainer import _epoch_seed

        seen = {
            _epoch_seed(seed, epoch)
            for seed in range(8)
            for epoch in range(32)
        }
        assert len(seen) == 8 * 32  # no collisions in a realistic window
        assert all(0 <= value < 2**31 - 1 for value in seen)

    def test_run_timeline_reproduces_identical_reports(self):
        from repro.dynamic import make_workload, run_dynamic

        outcomes = []
        for _ in range(2):
            graph, timeline = make_workload(
                "link_flap", n=60, epochs=6, seed=13
            )
            result = run_dynamic(graph, timeline, "luby", seed=13)
            outcomes.append(result)
        first, second = outcomes
        assert first.epochs == second.epochs  # full per-epoch rows
        assert first.cumulative_energy == second.cumulative_energy
        assert first.summary() == second.summary()

    def test_maintainer_timeline_reports_identical(self):
        graph = graphs.random_geometric(40, seed=5)
        events = [
            [GraphEvent(EDGE_REMOVE, 0, 1)],
            [GraphEvent(NODE_REMOVE, 2)],
            [GraphEvent(NODE_ADD, 99), GraphEvent(EDGE_ADD, 99, 3)],
        ]

        def reports():
            maintainer = MISMaintainer(graph, "luby", seed=21)
            return [maintainer.initial] + list(
                maintainer.run_timeline(events)
            )

        assert reports() == reports()
