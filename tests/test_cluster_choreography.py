"""Tests for the metered choreography layer (clock + energy charging)."""

import pytest

from repro.cluster import Choreography, RootedTree
from repro.congest import EnergyLedger


def line_tree(length):
    parent = {0: None}
    depth = {0: 0}
    for v in range(1, length):
        parent[v] = v - 1
        depth[v] = v
    return RootedTree(root=0, parent=parent, depth=depth)


class TestChoreography:
    def test_exchange_charges_one_round(self):
        ledger = EnergyLedger(range(5))
        chor = Choreography(ledger)
        chor.exchange([0, 1, 2])
        assert chor.clock == 1
        assert ledger.awake_rounds(0) == 1
        assert ledger.awake_rounds(3) == 0

    def test_broadcast_charges_two_per_node(self):
        ledger = EnergyLedger(range(4))
        chor = Choreography(ledger)
        tree = line_tree(4)
        chor.broadcast(tree, allotment=10)
        assert chor.clock == 10
        assert all(ledger.awake_rounds(v) == 2 for v in range(4))

    def test_broadcast_rejects_small_allotment(self):
        chor = Choreography(EnergyLedger(range(4)))
        with pytest.raises(ValueError):
            chor.broadcast(line_tree(4), allotment=4)  # height 3 needs 5

    def test_convergecast_symmetric_cost(self):
        ledger = EnergyLedger(range(4))
        chor = Choreography(ledger)
        chor.convergecast(line_tree(4), allotment=6)
        assert chor.clock == 6
        assert ledger.max_energy() == 2

    def test_awake_all_block(self):
        ledger = EnergyLedger(range(3))
        chor = Choreography(ledger)
        chor.awake_all([0, 1], 7)
        assert chor.clock == 7
        assert ledger.awake_rounds(1) == 7
        assert ledger.awake_rounds(2) == 0

    def test_idle_advances_clock_only(self):
        ledger = EnergyLedger(range(2))
        chor = Choreography(ledger)
        chor.idle(5)
        assert chor.clock == 5
        assert ledger.total_energy() == 0

    def test_negative_durations_rejected(self):
        chor = Choreography(EnergyLedger(range(2)))
        with pytest.raises(ValueError):
            chor.idle(-1)
        with pytest.raises(ValueError):
            chor.awake_all([0], -2)

    def test_parallel_broadcast_single_clock_advance(self):
        ledger = EnergyLedger(range(8))
        chor = Choreography(ledger)
        t1 = RootedTree(root=0, parent={0: None, 1: 0}, depth={0: 0, 1: 1})
        t2 = RootedTree(root=4, parent={4: None, 5: 4}, depth={4: 0, 5: 1})
        chor.parallel_broadcast([t1, t2], allotment=5)
        assert chor.clock == 5
        assert ledger.awake_rounds(1) == 2
        assert ledger.awake_rounds(5) == 2

    def test_parallel_broadcast_rejects_overlap(self):
        chor = Choreography(EnergyLedger(range(4)))
        t1 = RootedTree(root=0, parent={0: None, 1: 0}, depth={0: 0, 1: 1})
        t2 = RootedTree(root=1, parent={1: None}, depth={1: 0})
        with pytest.raises(ValueError):
            chor.parallel_broadcast([t1, t2], allotment=5)

    def test_operation_counters(self):
        chor = Choreography(EnergyLedger(range(4)))
        chor.exchange([0])
        chor.exchange([1])
        chor.broadcast(line_tree(2), allotment=4)
        assert chor.operations["exchange"] == 2
        assert chor.operations["broadcast"] == 1

    def test_metrics_roundtrip(self):
        ledger = EnergyLedger(range(3))
        chor = Choreography(ledger)
        chor.exchange([0, 1, 2])
        chor.idle(4)
        metrics = chor.metrics()
        assert metrics.rounds == 5
        assert metrics.max_energy == 1
