"""Tests for trial aggregation statistics."""

import pytest

from repro.analysis import Summary, aggregate_trials, geometric_mean


class TestSummary:
    def test_single_value(self):
        s = Summary.of([4.0])
        assert s.mean == 4.0
        assert s.std == 0.0
        assert s.median == 4.0
        assert s.count == 1

    def test_even_count_median(self):
        s = Summary.of([1.0, 2.0, 3.0, 4.0])
        assert s.median == 2.5

    def test_min_max(self):
        s = Summary.of([3.0, 1.0, 2.0])
        assert s.minimum == 1.0
        assert s.maximum == 3.0

    def test_std(self):
        s = Summary.of([2.0, 4.0])
        assert s.std == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Summary.of([])


class TestAggregateTrials:
    def test_aggregates_each_key(self):
        trials = [
            {"rounds": 10, "energy": 3},
            {"rounds": 12, "energy": 5},
        ]
        agg = aggregate_trials(trials)
        assert agg["rounds"].mean == 11.0
        assert agg["energy"].maximum == 5.0

    def test_inconsistent_keys_rejected(self):
        with pytest.raises(ValueError):
            aggregate_trials([{"a": 1}, {"b": 2}])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_trials([])


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])
