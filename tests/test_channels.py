"""Unit tests for the pluggable channel layer (congest/channels.py)."""

import networkx as nx
import pytest

from repro import graphs
from repro.baselines import luby_mis, radio_decay_mis
from repro.analysis import verify_mis
from repro.congest import (
    CHANNELS,
    COLLISION,
    BroadcastChannel,
    Channel,
    ChannelError,
    CongestChannel,
    EnergyLedger,
    LocalChannel,
    MessageTooLargeError,
    Network,
    NodeProgram,
    channel_scope,
    make_channel,
)


class Scripted(NodeProgram):
    """Transmit per a {round: payload} script; record everything heard."""

    def __init__(self, script=None, unicast=None):
        self.script = script or {}
        self.unicast = unicast or {}
        self.heard = {}

    def on_round(self, ctx):
        if ctx.round in self.script:
            ctx.broadcast(self.script[ctx.round])
        if ctx.round in self.unicast:
            receiver, payload = self.unicast[ctx.round]
            ctx.send(receiver, payload)

    def on_receive(self, ctx, messages):
        self.heard[ctx.round] = [(m.sender, m.payload) for m in messages]


def _run_rounds(graph, programs, rounds, channel, **kwargs):
    network = Network(graph, programs, channel=channel, **kwargs)
    network.run_rounds(rounds)
    return network


class TestMakeChannel:
    def test_registry_names_resolve(self):
        for name in CHANNELS:
            assert isinstance(make_channel(name), Channel)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown channel"):
            make_channel("pigeon")

    def test_instance_passes_through(self):
        channel = LocalChannel()
        assert make_channel(channel) is channel

    def test_default_is_batched_congest(self):
        channel = make_channel(None)
        assert isinstance(channel, CongestChannel)
        assert channel.batched

    def test_scope_sets_default_and_nests(self):
        with channel_scope("local"):
            assert isinstance(make_channel(None), LocalChannel)
            with channel_scope(None):  # None inherits, never masks
                assert isinstance(make_channel(None), LocalChannel)
            with channel_scope("broadcast"):
                assert isinstance(make_channel(None), BroadcastChannel)
            assert isinstance(make_channel(None), LocalChannel)
        assert type(make_channel(None)) is CongestChannel

    def test_bad_spec_rejected(self):
        with pytest.raises(TypeError):
            make_channel(42)


class TestLocalChannel:
    def test_unbounded_bandwidth(self):
        """A payload far beyond the CONGEST budget sails through LOCAL."""
        graph = nx.path_graph(2)
        huge = "x" * 10_000  # 80k bits >> B
        programs = {0: Scripted({0: huge}), 1: Scripted()}
        network = _run_rounds(graph, programs, 1, "local")
        assert programs[1].heard[0] == [(0, huge)]
        assert network.total_message_bits == 0  # unpriced by design

        with pytest.raises(MessageTooLargeError):
            _run_rounds(
                graph, {0: Scripted({0: huge}), 1: Scripted()}, 1, "congest"
            )

    def test_same_outputs_as_congest(self):
        """LOCAL changes accounting, never delivery: Luby runs identically."""
        graph = graphs.make_family("gnp_log_degree", 48, seed=3)
        local = luby_mis(graph, seed=3, channel="local")
        congest = luby_mis(graph, seed=3, channel="congest")
        assert local.mis == congest.mis
        assert local.rounds == congest.rounds
        assert local.max_energy == congest.max_energy
        assert local.metrics.messages_sent == congest.metrics.messages_sent
        assert local.metrics.total_message_bits == 0
        assert congest.metrics.total_message_bits > 0


class TestBroadcastChannel:
    def test_single_transmission_heard_cleanly(self):
        graph = nx.path_graph(3)  # 0 - 1 - 2
        programs = {0: Scripted({0: "hi"}), 1: Scripted(), 2: Scripted()}
        network = _run_rounds(graph, programs, 1, "broadcast")
        assert programs[1].heard[0] == [(0, "hi")]
        assert programs[2].heard[0] == []  # not a neighbor of 0
        assert network.messages_sent == 1  # one transmission, not per edge
        assert network.messages_delivered == 1
        assert network.collisions == 0

    def test_collision_detected_and_billed(self):
        graph = nx.path_graph(3)  # 1 and 2 both neighbor node 0? no: star
        graph = nx.star_graph(2)  # center 0, leaves 1 and 2
        programs = {v: Scripted({0: v} if v else {}) for v in graph.nodes}
        programs[1].script = {0: "a"}
        programs[2].script = {0: "b"}
        programs[0].script = {}
        ledger = EnergyLedger(graph.nodes)
        network = _run_rounds(
            graph, programs, 1, "broadcast", ledger=ledger
        )
        (sender, payload), = programs[0].heard[0]
        assert sender == -1 and payload is COLLISION
        assert network.collisions == 1
        assert network.messages_delivered == 0
        assert network.messages_dropped == 2
        # 1 awake round + 1 collision billed; leaves pay only the round.
        assert ledger.awake_rounds(0) == 2
        assert ledger.awake_rounds(1) == 1
        assert ledger.awake_rounds(2) == 1

    def test_collision_without_detection_is_silence(self):
        graph = nx.star_graph(2)
        programs = {0: Scripted(), 1: Scripted({0: "a"}),
                    2: Scripted({0: "b"})}
        ledger = EnergyLedger(graph.nodes)
        network = _run_rounds(
            graph, programs, 1, "broadcast-no-cd", ledger=ledger
        )
        assert programs[0].heard[0] == []  # can't tell noise from silence
        assert network.collisions == 1  # ...but the medium still collided
        assert ledger.awake_rounds(0) == 2  # and the slot is still wasted

    def test_half_duplex_transmitters_hear_nothing(self):
        graph = nx.path_graph(2)
        programs = {0: Scripted({0: "a"}), 1: Scripted({0: "b"})}
        network = _run_rounds(graph, programs, 1, "broadcast")
        assert programs[0].heard[0] == []
        assert programs[1].heard[0] == []
        assert network.collisions == 0  # nobody was listening

    def test_sleeping_nodes_hear_nothing(self):
        class Sleeper(Scripted):
            def on_start(self, ctx):
                ctx.wake_at(5)

        graph = nx.path_graph(2)
        programs = {0: Scripted({0: "a"}), 1: Sleeper()}
        _run_rounds(graph, programs, 2, "broadcast")
        assert programs[1].heard == {}

    def test_unicast_send_rejected(self):
        graph = nx.path_graph(2)
        programs = {0: Scripted(unicast={0: (1, "x")}), 1: Scripted()}
        with pytest.raises(ChannelError, match="shared medium"):
            _run_rounds(graph, programs, 1, "broadcast")

    def test_double_transmission_rejected(self):
        class Twice(NodeProgram):
            def on_round(self, ctx):
                ctx.broadcast("a")
                ctx.broadcast("b")

        graph = nx.path_graph(2)
        with pytest.raises(ChannelError, match="already transmitted"):
            _run_rounds(graph, {v: Twice() for v in graph}, 1, "broadcast")

    def test_bit_budget_still_enforced(self):
        graph = nx.path_graph(2)
        programs = {0: Scripted({0: "x" * 10_000}), 1: Scripted()}
        with pytest.raises(MessageTooLargeError):
            _run_rounds(graph, programs, 1, "broadcast")

    def test_metrics_carry_collisions(self):
        graph = nx.star_graph(2)
        programs = {0: Scripted(), 1: Scripted({0: "a"}),
                    2: Scripted({0: "b"})}
        network = _run_rounds(graph, programs, 1, "broadcast")
        assert network.metrics().collisions == 1


class TestInboxView:
    def _delivered_view(self):
        graph = nx.star_graph(3)  # leaves 1..3 all send to center 0
        programs = {v: Scripted({0: f"p{v}"} if v else {})
                    for v in graph.nodes}

        captured = {}

        class Capture(Scripted):
            def on_receive(self, ctx, messages):
                captured["inbox"] = messages
                super().on_receive(ctx, messages)

        programs[0] = Capture()
        _run_rounds(graph, programs, 1, "congest")
        return captured["inbox"], programs[0]

    def test_sequence_protocol(self):
        inbox, center = self._delivered_view()
        assert len(inbox) == 3
        assert bool(inbox)
        assert [m.sender for m in inbox] == [1, 2, 3]  # sorted-sender order
        assert inbox[0].payload == "p1"
        assert inbox == [type(inbox[0])(s, f"p{s}") for s in (1, 2, 3)]
        assert center.heard[0] == [(1, "p1"), (2, "p2"), (3, "p3")]

    def test_len_without_materialization(self):
        """Counting messages must not build Message objects."""
        graph = nx.star_graph(2)
        lengths = {}

        class CountOnly(NodeProgram):
            def on_receive(self, ctx, messages):
                lengths[ctx.node] = len(messages)

        programs = {0: CountOnly(), 1: Scripted({0: "a"}),
                    2: Scripted({0: "b"})}
        programs[1].on_receive = lambda ctx, messages: None
        programs[2].on_receive = lambda ctx, messages: None
        _run_rounds(graph, programs, 1, "congest")
        assert lengths[0] == 2


class TestRadioDecayMIS:
    @pytest.mark.parametrize("seed", range(3))
    def test_radio_mis_end_to_end(self, seed):
        graph = graphs.make_family("gnp_log_degree", 96, seed=seed)
        ledger = EnergyLedger(graph.nodes)
        result = radio_decay_mis(graph, seed=seed, ledger=ledger)
        report = verify_mis(graph, result.mis)
        assert report.independent
        assert report.maximal
        assert result.metrics.collisions > 0  # real contention happened
        # Collisions are billed: ledger total exceeds pure awake-rounds by
        # exactly the collision count.
        assert result.metrics.collisions == result.details["collisions"]

    def test_runs_on_reliable_channels_too(self):
        graph = graphs.make_family("gnp_log_degree", 64, seed=1)
        result = radio_decay_mis(graph, seed=1, channel="congest")
        report = verify_mis(graph, result.mis)
        assert report.independent and report.maximal
        assert result.metrics.collisions == 0


class TestStaleViewGuard:
    def test_stale_unmaterialized_view_raises(self):
        """Reading a stashed inbox view after its round must fail loudly,
        not silently serve recycled buffers."""
        stashed = {}

        class Stasher(NodeProgram):
            def on_round(self, ctx):
                ctx.broadcast("beat")

            def on_receive(self, ctx, messages):
                if ctx.round == 0 and ctx.node == 0:
                    stashed["inbox"] = messages  # kept without reading
                if ctx.round >= 1:
                    ctx.halt()

        graph = nx.path_graph(2)
        _run_rounds(graph, {v: Stasher() for v in graph}, 2, "congest")
        with pytest.raises(ChannelError, match="recycled"):
            list(stashed["inbox"])

    def test_copy_within_round_survives(self):
        copies = {}

        class Copier(NodeProgram):
            def on_round(self, ctx):
                ctx.broadcast(ctx.round)

            def on_receive(self, ctx, messages):
                if ctx.round == 0 and ctx.node == 0:
                    copies["inbox"] = list(messages)  # materializes now
                if ctx.round >= 1:
                    ctx.halt()

        graph = nx.path_graph(2)
        _run_rounds(graph, {v: Copier() for v in graph}, 2, "congest")
        assert [(m.sender, m.payload) for m in copies["inbox"]] == [(1, 0)]


class TestRadioSafety:
    def test_point_to_point_algorithm_refused_on_broadcast(self):
        from repro.harness import run_algorithm

        graph = graphs.make_family("grid", 25, seed=0)
        with pytest.raises(ValueError, match="unsound on the shared radio"):
            run_algorithm("luby", graph, channel="broadcast")

    def test_radio_safe_and_reliable_combos_allowed(self):
        from repro.harness import run_algorithm

        graph = graphs.make_family("grid", 25, seed=0)
        run_algorithm("radio_decay", graph, channel="broadcast")
        run_algorithm("luby", graph, channel="local")


class TestBroadcastCollisionAccounting:
    """Regression pins for the radio energy/collision bookkeeping.

    The dangerous edge case: a node that transmits *and* sits in a
    >= 2-transmitter neighborhood must be billed its transmit slot only —
    half-duplex means it never listens, so it can never be charged an
    additional collision (double-billing). Pinned on a hand-built 3-node
    graph for both the bincount listener scan (default) and the scalar
    reference scan.
    """

    @pytest.mark.parametrize("channel", ["broadcast", "broadcast-scalar"])
    def test_listener_between_two_transmitters(self, channel):
        # Triangle: 1 and 2 transmit, 0 listens and suffers one collision.
        graph = nx.complete_graph(3)
        programs = {0: Scripted(), 1: Scripted({0: "a"}),
                    2: Scripted({0: "b"})}
        network = _run_rounds(graph, programs, 1, channel)
        metrics = network.metrics()
        assert metrics.collisions == 1
        assert metrics.messages_sent == 2
        assert metrics.messages_delivered == 0
        assert metrics.messages_dropped == 2
        # 0: awake + one wasted listening slot; 1, 2: transmit slot only
        # (each also has a >= 2-transmitter neighborhood, but half-duplex
        # transmitters cannot waste a listening slot).
        assert network.ledger.snapshot() == {0: 2, 1: 1, 2: 1}
        assert programs[1].heard[0] == []  # transmitters hear nothing
        assert programs[2].heard[0] == []
        assert programs[0].heard[0] == [(-1, COLLISION)]

    @pytest.mark.parametrize("channel", ["broadcast", "broadcast-scalar"])
    def test_all_transmit_no_collision_charges(self, channel):
        # Every node transmits: nobody listens, so no collisions at all.
        graph = nx.complete_graph(3)
        programs = {v: Scripted({0: f"p{v}"}) for v in graph.nodes}
        network = _run_rounds(graph, programs, 1, channel)
        metrics = network.metrics()
        assert metrics.collisions == 0
        assert metrics.messages_sent == 3
        assert metrics.messages_delivered == 0
        assert metrics.messages_dropped == 0
        assert network.ledger.snapshot() == {0: 1, 1: 1, 2: 1}

    @pytest.mark.parametrize("channel", ["broadcast", "broadcast-scalar"])
    def test_clean_reception_next_to_a_collision(self, channel):
        # Path 0-1-2-3 with 1 and 3 transmitting: 0 hears 1 cleanly, 2
        # collides; per-node billing stays exact.
        graph = nx.path_graph(4)
        programs = {0: Scripted(), 1: Scripted({0: "x"}),
                    2: Scripted(), 3: Scripted({0: "y"})}
        network = _run_rounds(graph, programs, 1, channel)
        metrics = network.metrics()
        assert metrics.collisions == 1
        assert metrics.messages_sent == 2
        assert metrics.messages_delivered == 1
        assert metrics.messages_dropped == 2
        assert network.ledger.snapshot() == {0: 1, 1: 1, 2: 2, 3: 1}
        assert programs[0].heard[0] == [(1, "x")]
        assert programs[2].heard[0] == [(-1, COLLISION)]

    @pytest.mark.parametrize("seed", range(3))
    def test_vectorized_scan_matches_scalar_reference(self, seed):
        """End-to-end radio MIS: bincount scan == scalar scan, bit for
        bit, on outputs, metrics, and per-node ledgers."""
        graph = graphs.make_family("gnp_log_degree", 96, seed=seed)
        runs = {}
        for channel in ("broadcast", "broadcast-scalar"):
            ledger = EnergyLedger(graph.nodes)
            result = radio_decay_mis(
                graph, seed=seed, ledger=ledger, channel=channel
            )
            runs[channel] = (result, ledger.snapshot())
        vectorized, scalar = runs["broadcast"], runs["broadcast-scalar"]
        assert vectorized[0].mis == scalar[0].mis
        assert vectorized[0].metrics == scalar[0].metrics
        assert vectorized[1] == scalar[1]
