"""Tests for the LOCAL-model Phase III shortcut."""

import networkx as nx

from repro import graphs
from repro.analysis import verify_mis
from repro.cluster import singleton_clusters
from repro.congest import EnergyLedger
from repro.core import run_phase3


class TestLocalShortcut:
    def test_valid_mis_per_component(self):
        g = graphs.gnp(40, 0.15, seed=0)
        comp = max(nx.connected_components(g), key=lambda c: (len(c), min(c)))
        sub = g.subgraph(comp).copy()
        state = singleton_clusters(sub)
        result = run_phase3([state], seed=0, size_bound=1000, variant="local")
        assert verify_mis(sub, result.joined & comp).valid

    def test_never_fails(self):
        """The LOCAL shortcut is deterministic: no undecided nodes ever."""
        for seed in range(5):
            g = graphs.gnp(30, 0.2, seed=seed)
            comp = max(
                nx.connected_components(g), key=lambda c: (len(c), min(c))
            )
            sub = g.subgraph(comp).copy()
            state = singleton_clusters(sub)
            result = run_phase3(
                [state], seed=seed, size_bound=1000, variant="local"
            )
            assert result.remaining == set()
            assert result.details["failures"] == 0

    def test_cheaper_rounds_than_congest_variant(self):
        """Trading message size for time: the LOCAL finish needs only two
        tree operations after the merge."""
        g = graphs.gnp(40, 0.15, seed=1)
        comp = max(nx.connected_components(g), key=lambda c: (len(c), min(c)))
        sub = g.subgraph(comp).copy()

        local = run_phase3(
            [singleton_clusters(sub.copy())],
            seed=0, size_bound=1000, variant="local",
        )
        congest = run_phase3(
            [singleton_clusters(sub.copy())],
            seed=0, size_bound=1000, variant="alg1",
        )
        assert local.metrics.rounds <= congest.metrics.rounds

    def test_energy_charged_for_tree_ops(self):
        g = graphs.path(10)
        state = singleton_clusters(g)
        ledger = EnergyLedger(g.nodes)
        result = run_phase3(
            [state], seed=0, ledger=ledger, size_bound=100, variant="local"
        )
        assert result.metrics.max_energy > 0

    def test_matches_congest_output_contract(self):
        """Both variants produce a valid MIS of the same components."""
        g = graphs.gnp(35, 0.2, seed=2)
        comp = max(nx.connected_components(g), key=lambda c: (len(c), min(c)))
        sub = g.subgraph(comp).copy()
        for variant in ("alg1", "alg2", "local"):
            result = run_phase3(
                [singleton_clusters(sub.copy())],
                seed=0, size_bound=1000, variant=variant,
            )
            if not result.remaining:
                assert verify_mis(sub, result.joined & comp).valid
