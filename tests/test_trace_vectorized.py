"""NetworkTrace equivalence under the vectorized engine (satellite of the
observability PR): idle-span compaction and per-round awake/message counts
must be bit-identical to a scalar-engine trace.
"""

import networkx as nx
import pytest

from repro.baselines import LubyProgram, RegularizedLubyProgram
from repro.congest import Network

PROGRAMS = {
    "luby": lambda: LubyProgram(),
    "regularized_luby": lambda: RegularizedLubyProgram(4, 6, delta=8),
}


def _traced_network(make_program, n=80, p=0.08, seed=21):
    graph = nx.gnp_random_graph(n, p, seed=seed)
    return Network(
        graph, {v: make_program() for v in graph.nodes}, trace=True
    )


def _views(network):
    """Every derived view of a trace, for whole-trace comparison."""
    trace = network.trace
    nodes = sorted(network.graph.nodes)
    return {
        "rounds": trace.rounds,
        "awake_counts": trace.awake_counts(),
        "wake_rounds": {v: trace.wake_rounds_of(v) for v in nodes},
        "message_totals": trace.message_totals(),
        "sleep_diagram": trace.sleep_diagram(nodes[:8]),
    }


class TestVectorizedTraceEquivalence:
    @pytest.mark.parametrize("algorithm", sorted(PROGRAMS))
    def test_full_run_views_match_scalar(self, algorithm):
        make_program = PROGRAMS[algorithm]
        vectorized = _traced_network(make_program)
        vectorized.run(engine="vectorized")
        legacy = _traced_network(make_program)
        legacy.run(engine="legacy")
        assert _views(vectorized) == _views(legacy)

    @pytest.mark.parametrize("algorithm", sorted(PROGRAMS))
    def test_raw_records_match_scalar(self, algorithm):
        """Not just the views: per-round awake sets and message counts."""
        make_program = PROGRAMS[algorithm]
        vectorized = _traced_network(make_program)
        vectorized.run(engine="vectorized")
        fast = _traced_network(make_program)
        fast.run(engine="fast")
        assert vectorized.trace.records == fast.trace.records
        assert vectorized.trace.idle_spans == fast.trace.idle_spans

    def test_small_graph_forced_vectorized(self):
        """Forced mode bypasses the auto node-count floor; the trace must
        still match the scalar engines on tiny graphs."""
        vectorized = _traced_network(PROGRAMS["luby"], n=12, p=0.4, seed=3)
        vectorized.run(engine="vectorized")
        legacy = _traced_network(PROGRAMS["luby"], n=12, p=0.4, seed=3)
        legacy.run(engine="legacy")
        assert _views(vectorized) == _views(legacy)


class TestIdleCompactionVectorized:
    """run_rounds past completion idles: non-legacy engines compact the
    tail into an idle span, legacy records per-round empties — every
    derived view must agree anyway."""

    EXTRA = 25

    def _run_past_completion(self, engine):
        network = _traced_network(PROGRAMS["luby"], n=70, p=0.1, seed=9)
        network.run(engine=engine)
        finished_at = network.round_index
        network.run_rounds(self.EXTRA, engine=engine)
        return network, finished_at

    def test_vectorized_tail_is_a_compact_span(self):
        network, finished_at = self._run_past_completion("vectorized")
        assert network.round_index == finished_at + self.EXTRA
        assert network.trace.idle_spans[-1] == (
            finished_at + 1,
            finished_at + self.EXTRA,
        )
        # No empty per-round records were materialized for the tail.
        assert all(record.awake for record in network.trace.records)

    def test_views_match_legacy_per_round_records(self):
        vectorized, _ = self._run_past_completion("vectorized")
        legacy, _ = self._run_past_completion("legacy")
        assert not legacy.trace.idle_spans  # legacy never compacts
        assert _views(vectorized) == _views(legacy)

    def test_awake_counts_zero_fill_idle_tail(self):
        network, finished_at = self._run_past_completion("vectorized")
        counts = network.trace.awake_counts()
        assert len(counts) == network.trace.rounds
        assert counts[finished_at + 1:] == [0] * self.EXTRA


class TestMidCycleTruncation:
    """Repeated short run_rounds slices must leave the same trace as one
    uninterrupted run — including slices that cut a regularized-Luby
    cycle mid-way, forcing the vector runner to flush and reload."""

    @pytest.mark.parametrize("chunk", [1, 3, 7])
    def test_chunked_vectorized_trace_matches_scalar(self, chunk):
        chunked = _traced_network(PROGRAMS["regularized_luby"], n=70, p=0.1, seed=5)
        while chunked.has_pending_work():
            chunked.run_rounds(chunk, engine="vectorized")
        whole = _traced_network(PROGRAMS["regularized_luby"], n=70, p=0.1, seed=5)
        whole.run(engine="legacy")
        # The chunked run may have idled past completion inside its final
        # slice; compare the prefix covering the scalar run.
        scalar_views = _views(whole)
        chunked_views = _views(chunked)
        total = scalar_views["rounds"]
        assert chunked_views["awake_counts"][:total] == \
            scalar_views["awake_counts"]
        assert all(
            count == 0 for count in chunked_views["awake_counts"][total:]
        )
        assert chunked_views["wake_rounds"] == scalar_views["wake_rounds"]
        assert chunked_views["message_totals"] == \
            scalar_views["message_totals"]

    def test_switching_engines_mid_run_keeps_one_trace(self):
        """A vectorized prefix continued on the fast engine records into
        the same trace with consistent round indices."""
        hybrid = _traced_network(PROGRAMS["luby"], n=70, p=0.1, seed=6)
        hybrid.run_rounds(4, engine="vectorized")
        hybrid.run(engine="fast")
        scalar = _traced_network(PROGRAMS["luby"], n=70, p=0.1, seed=6)
        scalar.run(engine="fast")
        assert _views(hybrid) == _views(scalar)
