"""Tests for the Instrument event interface and its engine threading."""

import networkx as nx
import pytest

from repro import graphs
from repro.baselines import LubyProgram
from repro.congest import Network, engine_mode
from repro.harness import run_algorithm
from repro.obs import (
    NULL_INSTRUMENT,
    CompositeInstrument,
    Instrument,
    NullInstrument,
    RecordingInstrument,
    current_instrument,
    instrument_scope,
    resolve_instrument,
)


class TestResolution:
    def test_default_is_null(self):
        assert current_instrument() is NULL_INSTRUMENT
        assert resolve_instrument(None) is NULL_INSTRUMENT

    def test_scope_stack_nests_and_restores(self):
        outer, inner = RecordingInstrument(), RecordingInstrument()
        with instrument_scope(outer):
            assert current_instrument() is outer
            with instrument_scope(inner):
                assert current_instrument() is inner
            assert current_instrument() is outer
        assert current_instrument() is NULL_INSTRUMENT

    def test_none_scope_is_passthrough(self):
        outer = RecordingInstrument()
        with instrument_scope(outer):
            with instrument_scope(None):
                assert current_instrument() is outer

    def test_explicit_instance_wins_over_scope(self):
        scoped, explicit = RecordingInstrument(), RecordingInstrument()
        with instrument_scope(scoped):
            assert resolve_instrument(explicit) is explicit

    def test_rejects_non_instruments(self):
        with pytest.raises(TypeError):
            resolve_instrument("profiler")

    def test_network_caches_observed_flag(self):
        graph = graphs.path(3)
        plain = Network(graph, {v: LubyProgram() for v in graph.nodes})
        assert plain.instrument is NULL_INSTRUMENT
        assert not plain._observed

        rec = RecordingInstrument()
        observed = Network(
            graph, {v: LubyProgram() for v in graph.nodes}, instrument=rec
        )
        assert observed.instrument is rec
        assert observed._observed


class TestCompositeInstrument:
    def test_fans_out_in_order(self):
        first, second = RecordingInstrument(), RecordingInstrument()
        composite = CompositeInstrument([first, second])
        composite.on_phase_start("p")
        assert first.events == second.events == [("phase_start", "p")]

    def test_drops_null_members(self):
        rec = RecordingInstrument()
        composite = CompositeInstrument([NULL_INSTRUMENT, rec])
        assert composite.instruments == (rec,)

    def test_exposes_first_profiler(self):
        from repro.obs import Profiler

        prof = Profiler()
        composite = CompositeInstrument([RecordingInstrument(), prof])
        assert composite.profiler is prof

    def test_no_profiler_means_none(self):
        assert CompositeInstrument([RecordingInstrument()]).profiler is None


class TestEventStream:
    def _run(self, mode, algorithm="luby", n=80):
        rec = RecordingInstrument()
        graph = nx.gnp_random_graph(n, 0.1, seed=1)
        with engine_mode(mode), instrument_scope(rec):
            result = run_algorithm(algorithm, graph, seed=3)
        return rec, result

    def test_run_lifecycle_events(self):
        rec, result = self._run("auto")
        kinds = [event[0] for event in rec.events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert rec.events[-1] == ("run_end", result.rounds)

    @pytest.mark.parametrize(
        "algorithm",
        [
            "luby",
            "regularized_luby",
            "ghaffari2016",
            "algorithm1",
            "algorithm2",
        ],
    )
    def test_event_streams_identical_across_engines(self, algorithm):
        """The acceptance matrix: a recording instrument attached to every
        engine path sees the same rounds and the same awake counts — the
        paper's pipelines included, whose Phase-I networks exercise the
        schedule-aware kernels (on_phase_start/on_phase_end/on_round all
        line up event for event)."""
        legacy, _ = self._run("legacy", algorithm)
        fast, _ = self._run("fast", algorithm)
        vectorized, _ = self._run("vectorized", algorithm)
        assert legacy.events == fast.events == vectorized.events
        assert vectorized.rounds_seen == legacy.rounds_seen
        assert vectorized.awake_total == legacy.awake_total

    @pytest.mark.parametrize("algorithm", ["algorithm1", "ghaffari2016"])
    def test_profiler_rides_the_vectorized_path(self, algorithm):
        """``profile=True`` under a forced vectorized engine: the results
        stay bit-identical to an unprofiled run and the section tree
        records the dense rounds under ``vector_round``."""
        graph = nx.gnp_random_graph(80, 0.1, seed=1)
        with engine_mode("vectorized"):
            plain = run_algorithm(algorithm, graph, seed=3)
            profiled = run_algorithm(algorithm, graph, seed=3, profile=True)
        assert profiled.mis == plain.mis
        assert profiled.metrics == plain.metrics
        profile = profiled.details["profile"]

        def section_names(sections, acc):
            for section in sections:
                acc.add(section["name"])
                section_names(section.get("children", ()), acc)
            return acc

        names = section_names(profile["sections"], set())
        assert "vector_round" in names, sorted(names)

    def test_round_events_match_trace(self):
        """on_round awake counts must agree with the NetworkTrace."""
        rec = RecordingInstrument()
        graph = nx.gnp_random_graph(40, 0.15, seed=2)
        network = Network(
            graph,
            {v: LubyProgram() for v in graph.nodes},
            trace=True,
            instrument=rec,
        )
        network.run()
        counts = [awake for kind, _, awake in rec.of_kind("round")]
        assert counts == [c for c in network.trace.awake_counts() if c]

    def test_results_unchanged_by_instrumentation(self):
        _, observed = self._run("auto")
        graph = nx.gnp_random_graph(80, 0.1, seed=1)
        plain = run_algorithm("luby", graph, seed=3)
        assert observed.mis == plain.mis
        assert observed.metrics == plain.metrics


class TestPhaseEvents:
    @pytest.mark.parametrize(
        "algorithm,expected",
        [
            ("algorithm1", ["phase1", "phase2", "phase3"]),
            ("algorithm2", ["phase1", "phase2", "phase3"]),
            (
                "algorithm1_avg",
                ["phase1", "lemma42", "sparsify", "phase2", "phase3"],
            ),
        ],
    )
    def test_phase_sequence(self, algorithm, expected):
        rec = RecordingInstrument()
        graph = nx.gnp_random_graph(90, 0.08, seed=4)
        with instrument_scope(rec):
            result = run_algorithm(algorithm, graph, seed=1)
        starts = [name for _, name in rec.of_kind("phase_start")]
        ends = [event[1] for event in rec.of_kind("phase_end")]
        assert starts == ends == expected
        # Phase-end metrics are the same objects the result aggregates.
        reported = {
            event[1]: event[2] for event in rec.of_kind("phase_end")
        }
        for name, phase in result.metrics.phases.items():
            assert reported[name] == phase.rounds


class TestEpochEvents:
    def test_dynamic_epochs_are_emitted(self):
        from repro.harness import run_dynamic_workload

        rec = RecordingInstrument()
        with instrument_scope(rec):
            result = run_dynamic_workload(
                "link_flap", "algorithm1", n=40, epochs=3, seed=1
            )
        epochs = rec.of_kind("epoch")
        assert [event[1] for event in epochs] == [
            row.epoch for row in result.epochs
        ]
        assert [event[2] for event in epochs] == [
            row.mis_size for row in result.epochs
        ]


class TestNullInstrument:
    def test_singleton_shape(self):
        assert isinstance(NULL_INSTRUMENT, NullInstrument)
        assert isinstance(NULL_INSTRUMENT, Instrument)
        assert NULL_INSTRUMENT.profiler is None

    def test_every_hook_is_noop(self):
        NULL_INSTRUMENT.on_run_start(None)
        NULL_INSTRUMENT.on_round(None, 0, 0)
        NULL_INSTRUMENT.on_phase_start("p")
        NULL_INSTRUMENT.on_phase_end("p", None)
        NULL_INSTRUMENT.on_epoch(None)
        NULL_INSTRUMENT.on_run_end(None, None)
