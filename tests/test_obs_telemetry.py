"""Tests for the streaming JSONL telemetry sink and the report pipeline."""

import json

import networkx as nx
import pytest

from repro.harness import measure, measure_dynamic, sweep
from repro.obs import (
    SCHEMA_VERSION,
    channel_label,
    emit,
    make_record,
    set_telemetry_path,
    telemetry_path,
    telemetry_scope,
)
from repro.obs.report import (
    aggregate_records,
    flatten_numeric,
    format_report,
    group_key,
    load_records,
    report_file,
)


@pytest.fixture(autouse=True)
def _no_ambient_sink():
    """Keep the module-global sink path clean across tests."""
    set_telemetry_path(None)
    yield
    set_telemetry_path(None)


def _read_lines(path):
    with open(path, "r", encoding="utf-8") as stream:
        return [json.loads(line) for line in stream if line.strip()]


class TestSink:
    def test_emit_without_sink_is_noop(self):
        assert telemetry_path() is None
        assert emit({"kind": "static"}) is False

    def test_emit_appends_one_line_per_record(self, tmp_path):
        sink = tmp_path / "runs.jsonl"
        with telemetry_scope(sink):
            assert emit(make_record("static", n=8)) is True
            assert emit(make_record("static", n=16)) is True
        assert telemetry_path() is None
        rows = _read_lines(sink)
        assert [row["n"] for row in rows] == [8, 16]
        assert all(row["schema"] == SCHEMA_VERSION for row in rows)
        assert all("pid" in row for row in rows)

    def test_emit_stringifies_unserializable_values(self, tmp_path):
        sink = tmp_path / "runs.jsonl"
        emit(make_record("static", weird={1, 2}), path=str(sink))
        (row,) = _read_lines(sink)
        assert isinstance(row["weird"], str)

    def test_scope_restores_previous_path(self, tmp_path):
        outer = tmp_path / "outer.jsonl"
        set_telemetry_path(outer)
        with telemetry_scope(tmp_path / "inner.jsonl"):
            pass
        assert telemetry_path() == str(outer)

    def test_channel_label(self):
        from repro.congest import make_channel

        assert channel_label(None) is None
        assert channel_label("radio") == "radio"
        assert channel_label(make_channel("local")) == "local"


class TestStreamingEmission:
    def test_measure_streams_one_record_per_run(self, tmp_path):
        sink = tmp_path / "runs.jsonl"
        graph = nx.gnp_random_graph(30, 0.2, seed=1)
        with telemetry_scope(sink):
            row = measure("luby", graph, seed=0)
            assert len(_read_lines(sink)) == 1  # streamed, not end-dumped
            measure("luby", graph, seed=1)
        records = _read_lines(sink)
        assert len(records) == 2
        record = records[0]
        assert record["kind"] == "static"
        assert record["algorithm"] == "luby"
        assert record["n"] == 30
        assert record["seed"] == 0
        assert record["mis_size"] == row["mis_size"]
        assert record["independent"] and record["maximal"]
        assert record["metrics"]["rounds"] == row["rounds"]
        assert record["elapsed_s"] >= 0

    def test_measure_result_keys_unchanged_by_telemetry(self, tmp_path):
        graph = nx.gnp_random_graph(20, 0.2, seed=2)
        plain = measure("luby", graph, seed=0)
        with telemetry_scope(tmp_path / "runs.jsonl"):
            streamed = measure("luby", graph, seed=0)
        assert streamed == plain

    def test_sweep_emits_per_cell_records(self, tmp_path):
        sink = tmp_path / "sweep.jsonl"
        with telemetry_scope(sink):
            sweep(["luby"], [16, 24], seeds=2, family="gnp_log_degree")
        records = _read_lines(sink)
        assert len(records) == 4
        assert {r["n"] for r in records} == {16, 24}
        assert all(r["family"] == "gnp_log_degree" for r in records)

    def test_sweep_workers_inherit_sink(self, tmp_path):
        """Pool workers must re-install the ambient sink path."""
        sink = tmp_path / "parallel.jsonl"
        with telemetry_scope(sink):
            sweep(["luby"], [16], seeds=4, n_jobs=2)
        records = _read_lines(sink)
        assert len(records) == 4
        assert all(r["kind"] == "static" for r in records)

    def test_measure_dynamic_emits_summary_record(self, tmp_path):
        sink = tmp_path / "dynamic.jsonl"
        with telemetry_scope(sink):
            summary = measure_dynamic(
                "link_flap", "algorithm1", n=30, epochs=2, seed=0
            )
        (record,) = _read_lines(sink)
        assert record["kind"] == "dynamic"
        assert record["workload"] == "link_flap"
        assert record["algorithm"] == "algorithm1"
        assert record["epochs"] == 2
        assert record["summary"] == json.loads(json.dumps(summary))


class TestReport:
    def test_load_records_tolerates_torn_lines(self, tmp_path):
        sink = tmp_path / "torn.jsonl"
        sink.write_text(
            json.dumps(make_record("static", n=8, rounds=3)) + "\n"
            + "\n"
            + '[1, 2]\n'
            + json.dumps(make_record("static", n=8, rounds=5)) + "\n"
            + '{"kind": "static", "n": 8, "rou'  # torn final line
        )
        records, skipped = load_records(str(sink))
        assert len(records) == 2
        assert skipped == 2

    def test_flatten_numeric(self):
        record = make_record(
            "static",
            algorithm="luby",
            n=32,
            seed=7,
            independent=True,
            note="hello",
            metrics={"rounds": 9, "phases": {"phase1": {"rounds": 4}}},
        )
        flat = flatten_numeric(record)
        assert flat == {
            "independent": 1.0,
            "metrics.rounds": 9.0,
            "metrics.phases.phase1.rounds": 4.0,
        }

    def test_group_key_ignores_seed_and_missing_fields(self):
        a = make_record("static", algorithm="luby", n=32, seed=0)
        b = make_record("static", algorithm="luby", n=32, seed=1)
        c = make_record("static", algorithm="luby", n=64, seed=0)
        assert group_key(a) == group_key(b) != group_key(c)

    def test_aggregate_and_format(self):
        records = [
            make_record("static", algorithm="luby", n=32, rounds=4),
            make_record("static", algorithm="luby", n=32, rounds=6),
        ]
        groups = aggregate_records(records)
        assert len(groups) == 1
        (stats,) = groups.values()
        assert stats["rounds"].count == 2
        assert stats["rounds"].mean == pytest.approx(5.0)
        text = format_report(groups, skipped=1, source="x.jsonl")
        assert "2 record(s), 1 group(s)" in text
        assert "1 partial/undecodable line(s) skipped" in text
        assert "algorithm=luby" in text and "n=32" in text

    def test_report_file_on_real_sweep_output(self, tmp_path):
        sink = tmp_path / "sweep.jsonl"
        with telemetry_scope(sink):
            sweep(["luby"], [16], seeds=3)
        # Simulate an in-flight stream: append a torn half-record.
        with open(sink, "a", encoding="utf-8") as stream:
            stream.write('{"kind": "static", "alg')
        text = report_file(str(sink), max_keys=3)
        assert "3 record(s)" in text
        assert "1 partial/undecodable line(s) skipped" in text
        assert "more metric(s) truncated" in text

    def test_report_cli_entry(self, tmp_path, capsys):
        from repro.__main__ import main

        sink = tmp_path / "runs.jsonl"
        graph = nx.gnp_random_graph(16, 0.2, seed=3)
        with telemetry_scope(sink):
            measure("luby", graph, seed=0)
        assert main(["report", str(sink)]) == 0
        out = capsys.readouterr().out
        assert "telemetry report" in out
        assert "kind=static" in out

    def test_report_cli_missing_file(self, tmp_path):
        from repro.__main__ import main

        assert main(["report", str(tmp_path / "absent.jsonl")]) == 1
