"""Unit tests for the energy ledger and run metrics."""

import pytest

from repro.congest import EnergyLedger, RunMetrics


class TestEnergyLedger:
    def test_starts_at_zero(self):
        ledger = EnergyLedger([1, 2, 3])
        assert ledger.max_energy() == 0
        assert ledger.total_energy() == 0

    def test_charge_accumulates(self):
        ledger = EnergyLedger([1, 2])
        ledger.charge(1)
        ledger.charge(1, 2)
        assert ledger.awake_rounds(1) == 3
        assert ledger.awake_rounds(2) == 0

    def test_max_energy_is_max_over_nodes(self):
        ledger = EnergyLedger([1, 2, 3])
        ledger.charge(1, 5)
        ledger.charge(2, 2)
        assert ledger.max_energy() == 5

    def test_average_energy(self):
        ledger = EnergyLedger([1, 2, 3, 4])
        ledger.charge(1, 4)
        assert ledger.average_energy() == pytest.approx(1.0)

    def test_charge_many(self):
        ledger = EnergyLedger(range(10))
        ledger.charge_many(range(5), 2)
        assert ledger.total_energy() == 10

    def test_negative_charge_rejected(self):
        ledger = EnergyLedger([1])
        with pytest.raises(ValueError):
            ledger.charge(1, -1)

    def test_unknown_node_rejected(self):
        ledger = EnergyLedger([1])
        with pytest.raises(KeyError):
            ledger.charge(99)

    def test_empty_ledger_rejected(self):
        with pytest.raises(ValueError):
            EnergyLedger([])

    def test_snapshot_is_a_copy(self):
        ledger = EnergyLedger([1])
        snap = ledger.snapshot()
        snap[1] = 100
        assert ledger.awake_rounds(1) == 0


class TestRunMetrics:
    def test_from_ledger(self):
        ledger = EnergyLedger([1, 2])
        ledger.charge(1, 3)
        metrics = RunMetrics.from_ledger(rounds=10, ledger=ledger)
        assert metrics.rounds == 10
        assert metrics.max_energy == 3
        assert metrics.average_energy == pytest.approx(1.5)

    def test_combine_sequential_sums_rounds(self):
        a = RunMetrics(rounds=5, max_energy=2, average_energy=1.0, total_energy=4)
        b = RunMetrics(rounds=7, max_energy=3, average_energy=2.0, total_energy=8)
        combined = RunMetrics.combine_sequential({"p1": a, "p2": b})
        assert combined.rounds == 12
        assert combined.phases["p1"] is a

    def test_combine_without_ledger_upper_bounds_energy(self):
        a = RunMetrics(rounds=1, max_energy=2, average_energy=1.0, total_energy=4)
        b = RunMetrics(rounds=1, max_energy=3, average_energy=2.0, total_energy=8)
        combined = RunMetrics.combine_sequential({"p1": a, "p2": b})
        assert combined.max_energy == 5

    def test_combine_with_shared_ledger_uses_true_max(self):
        ledger = EnergyLedger([1, 2])
        ledger.charge(1, 2)  # phase 1 charged node 1
        a = RunMetrics.from_ledger(rounds=1, ledger=ledger)
        ledger.charge(2, 3)  # phase 2 charged node 2
        b = RunMetrics.from_ledger(rounds=1, ledger=ledger)
        combined = RunMetrics.combine_sequential({"a": a, "b": b}, ledger=ledger)
        # True combined max is 3 (node 2), not 2 + 3.
        assert combined.max_energy == 3

    def test_combine_aggregates_message_counters(self):
        a = RunMetrics(
            rounds=1, max_energy=0, average_energy=0, total_energy=0,
            messages_sent=4, max_message_bits=8,
        )
        b = RunMetrics(
            rounds=1, max_energy=0, average_energy=0, total_energy=0,
            messages_sent=6, max_message_bits=16,
        )
        combined = RunMetrics.combine_sequential({"a": a, "b": b})
        assert combined.messages_sent == 10
        assert combined.max_message_bits == 16

    def test_duplicate_phase_name_rejected(self):
        a = RunMetrics(rounds=1, max_energy=0, average_energy=0, total_energy=0)
        a.add_phase("x", a)
        with pytest.raises(ValueError):
            a.add_phase("x", a)
