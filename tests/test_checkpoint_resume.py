"""Sweep checkpoint/resume: record-and-skip ledger + kill-mid-flight resume.

Locks the resilient-sweep contract:

* a fresh (non-resume) checkpoint truncates stale state;
* resume replays recorded outcomes with ZERO recompute — proven by
  counting task-function invocations;
* failed tasks are re-attempted on resume, and an ``ok`` record
  supersedes an earlier ``failed`` one;
* ``sweep(..., checkpoint=..., resume=True)`` over an already-complete
  checkpoint recomputes nothing and reproduces the identical aggregate;
* a checkpointed run SIGKILLed mid-flight resumes exactly: only the
  unrecorded tasks run again and the merged outcomes equal an
  uninterrupted run's.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.harness.checkpoint import (
    SweepCheckpoint,
    run_checkpointed,
    task_key,
)
from repro.harness.sweep import sweep
from repro.obs.telemetry import read_records


def _outcome(task):
    return {"x": task[0], "sq": task[0] ** 2}


TASKS = [(i,) for i in range(6)]


# -- ledger basics --------------------------------------------------------

def test_task_key_is_stable_and_distinct():
    assert task_key((1, "a", 2.5)) == task_key((1, "a", 2.5))
    assert task_key((1, 2)) != task_key((2, 1))
    # Keys are valid JSON over the tuple-as-list: greppable + parseable.
    assert json.loads(task_key(("luby", "grid", 64, 0))) == [
        "luby", "grid", 64, 0
    ]


def test_fresh_checkpoint_truncates_stale_state(tmp_path):
    path = str(tmp_path / "cp.jsonl")
    first = SweepCheckpoint(path, resume=False)
    run_checkpointed(_outcome, TASKS, first)
    assert len(first) == len(TASKS)
    # A non-resume run must not inherit the earlier sweep's records.
    fresh = SweepCheckpoint(path, resume=False)
    assert len(fresh) == 0
    assert os.path.getsize(path) == 0


def test_resume_replays_without_recompute(tmp_path):
    path = str(tmp_path / "cp.jsonl")
    first = SweepCheckpoint(path, resume=False)
    run_checkpointed(_outcome, TASKS[:4], first)

    calls = []

    def counting(task):
        calls.append(task)
        return _outcome(task)

    resumed = SweepCheckpoint(path, resume=True)
    assert len(resumed) == 4
    outcomes = run_checkpointed(counting, TASKS, resumed)
    # Only the two unrecorded tasks ran; the rest were replayed verbatim.
    assert calls == TASKS[4:]
    assert outcomes == [_outcome(task) for task in TASKS]


def test_failed_task_reruns_on_resume_and_ok_supersedes(tmp_path):
    path = str(tmp_path / "cp.jsonl")
    first = SweepCheckpoint(path, resume=False)

    def flaky(task):
        if task[0] == 2:
            raise RuntimeError("transient")
        return _outcome(task)

    outcomes = run_checkpointed(
        flaky, TASKS, first, on_failure=lambda task, exc: None
    )
    assert outcomes[2] is None
    assert list(first.manifest().values()) == ["RuntimeError: transient"]

    resumed = SweepCheckpoint(path, resume=True)
    assert not resumed.completed(TASKS[2])  # failed => not completed
    outcomes = run_checkpointed(_outcome, TASKS, resumed)
    assert outcomes == [_outcome(task) for task in TASKS]
    assert resumed.manifest() == {}  # the ok record supersedes the failure
    # And a cold re-read of the file agrees.
    reread = SweepCheckpoint(path, resume=True)
    assert len(reread) == len(TASKS)
    assert reread.manifest() == {}


def test_sweep_resume_is_bit_identical_with_zero_recompute(tmp_path):
    path = str(tmp_path / "sweep.jsonl")
    kwargs = dict(family="gnp_log_degree", seeds=2, seed_base=3)
    baseline = sweep(["luby"], [32, 48], **kwargs)
    first = sweep(["luby"], [32, 48], checkpoint=path, **kwargs)
    size_after_first = os.path.getsize(path)
    resumed = sweep(
        ["luby"], [32, 48], checkpoint=path, resume=True, **kwargs
    )
    # Zero recompute: resume appended no new records.
    assert os.path.getsize(path) == size_after_first
    for a, b in zip(first, resumed):
        assert a == b
    for a, b in zip(baseline, resumed):
        assert a.summaries == b.summaries


# -- kill mid-flight ------------------------------------------------------

_SWEEP_SCRIPT = """
import sys, time
sys.path.insert(0, {src!r})
from repro.harness.checkpoint import SweepCheckpoint, run_checkpointed

def slow_square(task):
    time.sleep(0.4)
    return {{"x": task[0], "sq": task[0] ** 2}}

if __name__ == "__main__":
    tasks = [(i,) for i in range(10)]
    cp = SweepCheckpoint({path!r}, resume=False)
    run_checkpointed(slow_square, tasks, cp, n_jobs=2)
    print("DONE", flush=True)
"""


def _ok_records(path):
    if not os.path.exists(path):
        return 0
    return sum(
        1 for record in read_records(path) if record.get("status") == "ok"
    )


@pytest.mark.skipif(os.name == "nt", reason="needs POSIX signals")
def test_sigkill_mid_sweep_then_resume_matches_uninterrupted(tmp_path):
    path = str(tmp_path / "cp.jsonl")
    script = tmp_path / "sweep_script.py"
    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )
    script.write_text(_SWEEP_SCRIPT.format(src=src, path=path))
    proc = subprocess.Popen(
        [sys.executable, str(script)], start_new_session=True
    )
    try:
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if _ok_records(path) >= 2:
                break
            if proc.poll() is not None:
                pytest.fail("sweep finished before it could be killed")
            time.sleep(0.05)
        else:
            pytest.fail("checkpoint never accumulated 2 ok records")
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait()

    tasks = [(i,) for i in range(10)]
    resumed = SweepCheckpoint(path, resume=True)
    done_before = len(resumed)
    assert 2 <= done_before < 10  # killed mid-flight, partial progress

    calls = []

    def counting(task):
        calls.append(task)
        return _outcome(task)

    outcomes = run_checkpointed(counting, tasks, resumed)
    # Exactly the unrecorded remainder ran — nothing was recomputed.
    assert len(calls) == 10 - done_before
    # The merged aggregate equals an uninterrupted run's.
    assert outcomes == [_outcome(task) for task in tasks]
