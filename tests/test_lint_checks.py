"""Unit coverage for the analyzer framework and per-check documentation.

The embedded ``bad_example`` / ``good_example`` of every check are part
of its contract: the bad one must trigger exactly that check, the good
one must lint clean. This is what keeps ``repro lint --explain``
truthful — the examples it prints are verified here, so they cannot
drift from what the analyzer enforces.
"""

import pytest

from repro.lint import (
    ALL_CHECKS,
    SYNTAX_ERROR_ID,
    Finding,
    SuppressionIndex,
    get_check,
    lint_source,
    sort_findings,
)

CHECK_IDS = [check.id for check in ALL_CHECKS]


def test_registry_ids_are_unique_and_well_formed():
    assert len(set(CHECK_IDS)) == len(CHECK_IDS)
    for check in ALL_CHECKS:
        assert check.id.startswith("RL") and len(check.id) == 5
        assert check.name and check.summary and check.rationale
        assert check.bad_example.strip()
        assert check.good_example.strip()


@pytest.mark.parametrize("check", ALL_CHECKS, ids=lambda c: c.id)
def test_bad_example_triggers_exactly_this_check(check):
    findings = lint_source(check.bad_example, "bad.py", checks=[check])
    assert findings, f"{check.id} bad_example does not trigger it"
    assert {f.check_id for f in findings} == {check.id}


@pytest.mark.parametrize("check", ALL_CHECKS, ids=lambda c: c.id)
def test_good_example_lints_clean_under_full_battery(check):
    assert lint_source(check.good_example, "good.py") == []


@pytest.mark.parametrize("check", ALL_CHECKS, ids=lambda c: c.id)
def test_explain_card_mentions_both_examples(check):
    card = check.explain()
    assert check.id in card
    assert check.name in card
    assert f"disable={check.id}" in card


def test_get_check_resolves_id_and_name():
    assert get_check("RL101").id == "RL101"
    assert get_check("rl101").id == "RL101"
    assert get_check("undeclared-state").id == "RL101"
    assert get_check("RL999") is None


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------
class TestSuppressions:
    def test_line_scoped_directive(self):
        source = (
            "class P(NodeProgram):\n"
            "    def on_round(self, ctx):\n"
            "        self.x = 1  # repro-lint: disable=RL101\n"
        )
        assert lint_source(source, "f.py") == []

    def test_file_wide_directive(self):
        source = (
            "# repro-lint: disable-file=RL101\n"
            "class P(NodeProgram):\n"
            "    def on_round(self, ctx):\n"
            "        self.x = 1\n"
        )
        assert lint_source(source, "f.py") == []

    def test_disable_all(self):
        source = (
            "class P(NodeProgram):\n"
            "    def on_round(self, ctx):\n"
            "        self.x = ctx  # repro-lint: disable=all\n"
        )
        assert lint_source(source, "f.py") == []

    def test_unrelated_id_does_not_suppress(self):
        source = (
            "class P(NodeProgram):\n"
            "    def on_round(self, ctx):\n"
            "        self.x = 1  # repro-lint: disable=RL203\n"
        )
        assert {f.check_id for f in lint_source(source, "f.py")} == {
            "RL101"
        }

    def test_marker_inside_string_literal_is_inert(self):
        source = (
            'TEXT = "# repro-lint: disable-file=all"\n'
            "class P(NodeProgram):\n"
            "    def on_round(self, ctx):\n"
            "        self.x = 1\n"
        )
        assert {f.check_id for f in lint_source(source, "f.py")} == {
            "RL101"
        }

    def test_multiple_ids_one_directive(self):
        index = SuppressionIndex.from_source(
            "x = 1  # repro-lint: disable=RL101, RL203\n"
        )
        assert index.by_line[1] == {"RL101", "RL203"}


# ---------------------------------------------------------------------------
# Engine behavior
# ---------------------------------------------------------------------------
def test_syntax_error_becomes_rl000_finding():
    findings = lint_source("def broken(:\n", "broken.py")
    assert len(findings) == 1
    assert findings[0].check_id == SYNTAX_ERROR_ID


def test_sort_findings_orders_by_path_then_position():
    a = Finding("b.py", 1, 1, "RL101", "m")
    b = Finding("a.py", 9, 1, "RL101", "m")
    c = Finding("a.py", 2, 5, "RL203", "m")
    assert sort_findings([a, b, c]) == [c, b, a]


def test_finding_render_and_dict_roundtrip():
    f = Finding("x.py", 3, 7, "RL101", "[undeclared-state] msg")
    assert f.render() == "x.py:3:7: RL101 [undeclared-state] msg"
    assert f.to_dict()["line"] == 3


def test_inherited_state_is_visible_to_subclasses():
    """Attributes staged in an in-module ancestor count as declared."""
    source = (
        "class Base(NodeProgram):\n"
        "    def __init__(self):\n"
        "        self.level = 0\n"
        "class Child(Base):\n"
        "    def on_round(self, ctx):\n"
        "        self.level += 1\n"
    )
    assert lint_source(source, "f.py") == []


def test_opaque_schema_is_skipped_not_guessed():
    """A computed state_schema() must not produce RL102/RL103 noise."""
    source = (
        "class P(NodeProgram):\n"
        "    @classmethod\n"
        "    def state_schema(cls):\n"
        "        return tuple(make_fields())\n"
    )
    assert lint_source(source, "f.py") == []
