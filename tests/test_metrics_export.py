"""Round-trip tests for the RunMetrics / MISResult export (to_dict)."""

import json

import networkx as nx
import pytest

from repro.congest.metrics import RunMetrics
from repro.harness import run_algorithm


def _sample_metrics():
    return RunMetrics(
        rounds=12,
        max_energy=5,
        average_energy=2.5,
        total_energy=20,
        messages_sent=31,
        messages_delivered=29,
        messages_dropped=2,
        total_message_bits=640,
        max_message_bits=64,
        collisions=3,
    )


class TestRunMetricsRoundTrip:
    def test_flat_round_trip(self):
        metrics = _sample_metrics()
        assert RunMetrics.from_dict(metrics.to_dict()) == metrics

    def test_phases_round_trip_recursively(self):
        inner = _sample_metrics()
        outer = RunMetrics(
            rounds=24, max_energy=9, average_energy=4.0, total_energy=32
        )
        outer.add_phase("phase1", inner)
        outer.add_phase(
            "phase2",
            RunMetrics(
                rounds=12, max_energy=4, average_energy=1.5, total_energy=12
            ),
        )
        rebuilt = RunMetrics.from_dict(outer.to_dict())
        assert rebuilt == outer
        assert rebuilt.phases["phase1"] == inner

    def test_to_dict_is_json_serializable(self):
        outer = _sample_metrics()
        outer.add_phase("phase1", _sample_metrics())
        data = json.loads(json.dumps(outer.to_dict()))
        assert RunMetrics.from_dict(data) == outer

    def test_to_dict_exports_every_counter(self):
        data = _sample_metrics().to_dict()
        assert data == {
            "rounds": 12,
            "max_energy": 5,
            "average_energy": 2.5,
            "total_energy": 20,
            "messages_sent": 31,
            "messages_delivered": 29,
            "messages_dropped": 2,
            "total_message_bits": 640,
            "max_message_bits": 64,
            "collisions": 3,
        }

    def test_from_dict_defaults_missing_message_fields(self):
        """Old/minimal records (e.g. hand-written fixtures) still load."""
        metrics = RunMetrics.from_dict(
            {
                "rounds": 3,
                "max_energy": 1,
                "average_energy": 0.5,
                "total_energy": 2,
            }
        )
        assert metrics.messages_sent == 0
        assert metrics.collisions == 0
        assert metrics.phases == {}

    def test_phases_omitted_when_empty(self):
        assert "phases" not in _sample_metrics().to_dict()


class TestMISResultToDict:
    @pytest.fixture(scope="class")
    def result(self):
        graph = nx.gnp_random_graph(40, 0.15, seed=11)
        return run_algorithm("algorithm1", graph, seed=2)

    def test_basic_shape(self, result):
        data = result.to_dict()
        assert data["algorithm"] == result.algorithm
        assert data["mis_size"] == len(result.mis)
        assert "mis" not in data
        rebuilt = RunMetrics.from_dict(data["metrics"])
        assert rebuilt == result.metrics
        assert set(rebuilt.phases) == {"phase1", "phase2", "phase3"}

    def test_include_mis(self, result):
        data = result.to_dict(include_mis=True)
        assert data["mis"] == sorted(result.mis)

    def test_details_passthrough(self, result):
        assert result.details  # algorithm1 records phase details
        assert result.to_dict()["details"] is result.details

    def test_json_serializable_with_profile(self):
        graph = nx.gnp_random_graph(40, 0.15, seed=12)
        result = run_algorithm("luby", graph, seed=1, profile=True)
        text = json.dumps(result.to_dict(include_mis=True), default=str)
        data = json.loads(text)
        assert data["details"]["profile"]["wall_s"] > 0
