"""Targeted tests for the distinct merge paths of Lemma 2.8.

The merge loop has four merge sets (M, E_H, M_L, R); these tests construct
topologies that force each path to be exercised.
"""

import networkx as nx

from repro import graphs
from repro.cluster import (
    Choreography,
    RootedTree,
    merge_component_clusters,
    singleton_clusters,
    state_from_trees,
)
from repro.congest import EnergyLedger


def merge(graph, state=None, **kwargs):
    if state is None:
        state = singleton_clusters(graph)
    ledger = EnergyLedger(graph.nodes)
    chor = Choreography(ledger)
    tree, report = merge_component_clusters(state, chor, **kwargs)
    return tree, report


class TestMutualPairs:
    def test_two_clusters_form_m_pair(self):
        tree, report = merge(graphs.path(2))
        assert report.merges_by_set["M"] == 1
        assert report.merges_by_set["E_H"] == 0

    def test_chain_of_pairs(self):
        """A path of singletons: cluster i's min neighbor is i-1, so 0-1
        become a mutual pair; everyone else points down the chain."""
        tree, report = merge(graphs.path(6))
        assert report.merges_by_set["M"] >= 1


class TestHighIndegree:
    def test_star_hub_becomes_high(self):
        """A star with enough leaves: every leaf picks the hub (minimum id
        0), giving the hub indegree >= 10 -> E_H star merge."""
        graph = graphs.star(14)  # hub 0 + 13 leaves
        tree, report = merge(graph)
        # The hub+leaf-1 pair is mutual (leaf 1's min neighbor is 0, hub's
        # min neighbor is 1); the remaining 12 leaves hit the E_H path.
        assert report.merges_by_set["E_H"] >= 10
        assert report.iterations == 1
        tree.validate()

    def test_below_threshold_goes_matching(self):
        """With < 10 leaves the hub is low-indegree: the matching path."""
        graph = graphs.star(6)
        tree, report = merge(graph)
        assert report.merges_by_set["E_H"] == 0
        tree.validate()


class TestMatchingAndLeftovers:
    def test_matching_used_on_cycle(self):
        tree, report = merge(graphs.cycle(9))
        assert report.merges_by_set["M"] + report.merges_by_set["M_L"] >= 1
        tree.validate()

    def test_leftover_path_engages(self):
        """Odd chains leave an unmatched cluster that must hook via R."""
        total_r = 0
        for n in (5, 7, 9, 11):
            _, report = merge(graphs.path(n))
            total_r += report.merges_by_set["R"]
        assert total_r >= 1

    def test_counts_add_up(self):
        graph = graphs.gnp(40, 0.15, seed=0)
        comp = max(nx.connected_components(graph), key=lambda c: (len(c), min(c)))
        sub = graph.subgraph(comp).copy()
        tree, report = merge(sub)
        merges = sum(report.merges_by_set.values())
        # k clusters need exactly k-1 merges to become one.
        assert merges == len(comp) - 1


class TestPreClusteredMerges:
    def test_merge_preserves_depth_consistency(self):
        # A 4x4 grid (row-major labels) partitioned into four 2x2 quadrant
        # clusters, each a BFS tree from its lowest-id corner.
        g = graphs.grid_2d(4, 4)
        quadrants = {
            0: {0, 1, 4, 5},
            2: {2, 3, 6, 7},
            8: {8, 9, 12, 13},
            10: {10, 11, 14, 15},
        }
        trees = {
            corner: RootedTree.bfs(g, corner, members=members)
            for corner, members in quadrants.items()
        }
        state = state_from_trees(g, trees)
        ledger = EnergyLedger(g.nodes)
        tree, report = merge_component_clusters(state, Choreography(ledger))
        tree.validate()
        assert tree.nodes == set(g.nodes)
        assert report.initial_clusters == 4
