"""Tests for complexity curves, log*, and scaling fits."""

import math

import pytest

from repro.analysis import (
    MODELS,
    algorithm1_energy,
    algorithm1_time,
    algorithm2_energy,
    algorithm2_time,
    best_model,
    fit_model,
    growth_ratio,
    log2_safe,
    log_star,
    loglog,
    luby_energy,
    luby_time,
)


class TestLogStar:
    def test_base_cases(self):
        assert log_star(0) == 0
        assert log_star(1) == 0
        assert log_star(2) == 1

    def test_tower_values(self):
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(2**16) == 4

    def test_monotone(self):
        values = [log_star(2**k) for k in range(1, 20)]
        assert values == sorted(values)


class TestSafeLogs:
    def test_log2_safe_clamps(self):
        assert log2_safe(0.5) == 1.0
        assert log2_safe(1024) == 10.0

    def test_loglog_clamps(self):
        assert loglog(2) == 1.0
        assert loglog(2**16) == 4.0


class TestReferenceCurves:
    def test_energy_ordering_at_large_n(self):
        """The paper's headline: alg1 < alg2 < luby on energy."""
        n = 2**20
        assert algorithm1_energy(n) < algorithm2_energy(n) < luby_energy(n)

    def test_time_ordering_at_large_n(self):
        """Luby is fastest; alg2 close behind; alg1 slowest.

        The log* and loglog factors of Algorithm 2 only drop below the extra
        log factor of Algorithm 1 for fairly large n, so this crossover is
        checked far out (the paper's claim is asymptotic).
        """
        n = 2**40
        assert luby_time(n) < algorithm2_time(n) < algorithm1_time(n)

    def test_alg2_time_includes_logstar_factor(self):
        n = 2**16
        assert algorithm2_time(n) == pytest.approx(
            log2_safe(n) * loglog(n) * log_star(n)
        )


class TestFitting:
    def test_recovers_log_curve(self):
        xs = [2**k for k in range(4, 14)]
        ys = [3.0 * math.log2(x) + 1.0 for x in xs]
        fit = fit_model(xs, ys, "log")
        assert fit.scale == pytest.approx(3.0, abs=1e-6)
        assert fit.offset == pytest.approx(1.0, abs=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_best_model_prefers_true_shape(self):
        xs = [2**k for k in range(4, 16)]
        log_series = [5.0 * math.log2(x) for x in xs]
        loglog_series = [5.0 * loglog(x) for x in xs]
        assert best_model(xs, log_series).model == "log"
        assert best_model(xs, loglog_series).model == "loglog"

    def test_constant_series_prefers_const(self):
        xs = [2**k for k in range(4, 12)]
        ys = [7.0] * len(xs)
        assert best_model(xs, ys).model == "const"

    def test_predict_round_trip(self):
        xs = [2**k for k in range(4, 12)]
        ys = [2.0 * math.log2(x) for x in xs]
        fit = fit_model(xs, ys, "log")
        assert fit.predict(2**8) == pytest.approx(16.0, abs=1e-6)

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            fit_model([1, 2], [1, 2], "cubic")

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_model([1], [1], "log")

    def test_models_registry_shapes(self):
        for name, fn in MODELS.items():
            assert fn(2**10) >= 0, name


class TestGrowthRatio:
    def test_flat_series(self):
        assert growth_ratio([1, 2, 3], [5, 5, 5]) == pytest.approx(1.0)

    def test_growing_series(self):
        assert growth_ratio([1, 2], [2, 8]) == pytest.approx(4.0)

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            growth_ratio([1], [1])
