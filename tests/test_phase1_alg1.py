"""Tests for Phase I of Algorithm 1 (Lemma 2.1)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.analysis import is_independent_set
from repro.congest import EnergyLedger
from repro.core.config import DEFAULT_CONFIG
from repro.core.phase1_alg1 import run_phase1_alg1


class TestPhase1Basics:
    def test_output_is_independent(self):
        g = graphs.gnp(120, 0.2, seed=0)
        result = run_phase1_alg1(g, seed=1)
        assert is_independent_set(g, result.joined)

    def test_partition(self):
        g = graphs.gnp(100, 0.15, seed=1)
        result = run_phase1_alg1(g, seed=0)
        result.check_partition(set(g.nodes))

    def test_dominated_are_neighbors_of_joined(self):
        g = graphs.gnp(100, 0.15, seed=2)
        result = run_phase1_alg1(g, seed=0)
        for node in result.dominated:
            assert any(u in result.joined for u in g.neighbors(node))

    def test_low_degree_graph_is_noop(self):
        """With Δ <= polylog the truncated iteration count is zero."""
        g = graphs.path(50)
        result = run_phase1_alg1(g, seed=0)
        assert result.joined == set()
        assert result.remaining == set(g.nodes)
        assert result.metrics.rounds == 0

    def test_empty_graph(self):
        g = graphs.empty_graph(5)
        result = run_phase1_alg1(g, seed=0)
        assert result.remaining == set(g.nodes)


class TestLemma21Guarantees:
    def test_residual_degree_drops(self):
        """Lemma 2.1: the residual graph has degree O(log² n)."""
        n = 300
        g = graphs.gnp_expected_degree(n, 160.0, seed=3)
        result = run_phase1_alg1(g, seed=0)
        assert result.details["iterations"] >= 1  # phase actually ran
        bound = 4 * math.log2(n) ** 2
        assert result.details["residual_max_degree"] <= bound

    def test_energy_is_loglog(self):
        """Each node awake O(log log n) rounds (3 sub-rounds per schedule
        entry, |S| <= ceil(log T) + the hand-off round)."""
        n = 400
        g = graphs.gnp_expected_degree(n, 50.0, seed=4)
        result = run_phase1_alg1(g, seed=0)
        total_rounds = (
            result.details["iterations"]
            * result.details["rounds_per_iteration"]
        )
        schedule_bound = math.floor(math.log2(max(2, total_rounds))) + 1
        assert result.metrics.max_energy <= 3 * schedule_bound + 1

    def test_time_is_log_delta_times_log_n(self):
        n = 256
        g = graphs.gnp_expected_degree(n, 40.0, seed=5)
        result = run_phase1_alg1(g, seed=0)
        assert result.metrics.rounds <= 3 * math.log2(n) ** 2 + 1

    def test_unsampled_nodes_sleep_through_phase(self):
        g = graphs.gnp_expected_degree(200, 120.0, seed=6)
        ledger = EnergyLedger(g.nodes)
        result = run_phase1_alg1(g, seed=0, ledger=ledger)
        assert result.details["iterations"] >= 1
        sampled = result.details["sampled_nodes"]
        assert sampled < g.number_of_nodes()
        # Unsampled nodes paid only the single hand-off round.
        unsampled_energies = sorted(
            ledger.awake_rounds(v) for v in g.nodes
        )[: g.number_of_nodes() - sampled]
        assert all(e == 1 for e in unsampled_energies)

    def test_few_nodes_sampled(self):
        """Section 4.1: O(n / log n) nodes are ever sampled."""
        n = 500
        g = graphs.gnp_expected_degree(n, 200.0, seed=7)
        result = run_phase1_alg1(g, seed=0)
        assert result.details["iterations"] >= 1
        assert result.details["sampled_nodes"] <= 6 * n / math.log2(n)

    def test_messages_are_single_bit(self):
        g = graphs.gnp_expected_degree(150, 30.0, seed=8)
        result = run_phase1_alg1(g, seed=0)
        assert result.metrics.max_message_bits <= 1


class TestDeterminism:
    def test_same_seed_same_result(self):
        g = graphs.gnp_expected_degree(150, 40.0, seed=9)
        a = run_phase1_alg1(g, seed=42)
        b = run_phase1_alg1(g, seed=42)
        assert a.joined == b.joined
        assert a.metrics.max_energy == b.metrics.max_energy

    def test_config_override_changes_rounds(self):
        g = graphs.gnp_expected_degree(150, 40.0, seed=9)
        slow = DEFAULT_CONFIG.with_overrides(phase1_round_factor=2.0)
        a = run_phase1_alg1(g, seed=0)
        b = run_phase1_alg1(g, seed=0, config=slow)
        if a.metrics.rounds:  # phase active at this scale
            assert b.metrics.rounds > a.metrics.rounds


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=30, max_value=120),
    degree=st.floats(min_value=10.0, max_value=40.0),
    graph_seed=st.integers(min_value=0, max_value=100),
    run_seed=st.integers(min_value=0, max_value=100),
)
def test_phase1_independence_property(n, degree, graph_seed, run_seed):
    """Independence of the joined set holds unconditionally (not just whp)."""
    g = graphs.gnp_expected_degree(n, min(degree, n / 2), seed=graph_seed)
    result = run_phase1_alg1(g, seed=run_seed)
    assert is_independent_set(g, result.joined)
    result.check_partition(set(g.nodes))
