"""CLI surface of ``python -m repro lint``: formats, exit codes, explain."""

import json
from pathlib import Path

import pytest

from repro.__main__ import main as repro_main
from repro.lint import ALL_CHECKS
from repro.lint.cli import main as lint_main

FIXTURES = Path(__file__).parent / "lint_fixtures"
CLEAN_FIXTURE = str(FIXTURES / "rl101_clean.py")
VIOLATION_FIXTURE = str(FIXTURES / "rl101_violation.py")


class TestExitCodes:
    def test_clean_file_exits_zero(self, capsys):
        assert lint_main([CLEAN_FIXTURE]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert lint_main([VIOLATION_FIXTURE]) == 1
        out = capsys.readouterr().out
        assert "RL101" in out

    def test_fixture_corpus_exits_one(self, capsys):
        assert lint_main([str(FIXTURES)]) == 1

    def test_unknown_explain_id_exits_two(self, capsys):
        assert lint_main(["--explain", "RL999"]) == 2
        assert "unknown check" in capsys.readouterr().err


class TestJsonFormat:
    def test_json_report_smoke(self, capsys):
        code = lint_main([VIOLATION_FIXTURE, "--format", "json"])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["tool"] == "repro-lint"
        assert report["finding_count"] == len(report["findings"]) > 0
        first = report["findings"][0]
        assert set(first) == {"path", "line", "col", "check_id", "message"}
        assert first["check_id"] == "RL101"

    def test_json_clean_report(self, capsys):
        assert lint_main([CLEAN_FIXTURE, "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["finding_count"] == 0
        assert report["findings"] == []


class TestExplainAndList:
    @pytest.mark.parametrize(
        "check", ALL_CHECKS, ids=lambda c: c.id
    )
    def test_explain_every_check(self, check, capsys):
        assert lint_main(["--explain", check.id]) == 0
        out = capsys.readouterr().out
        assert check.id in out
        assert "Violating example:" in out
        assert "Compliant example:" in out

    def test_explain_accepts_kebab_name(self, capsys):
        assert lint_main(["--explain", "undeclared-state"]) == 0
        assert "RL101" in capsys.readouterr().out

    def test_list_enumerates_the_battery(self, capsys):
        assert lint_main(["--list"]) == 0
        out = capsys.readouterr().out
        for check in ALL_CHECKS:
            assert check.id in out


class TestDispatch:
    """``repro lint ...`` must route through the top-level CLI."""

    def test_main_module_dispatches_lint(self, capsys):
        assert repro_main(["lint", CLEAN_FIXTURE]) == 0
        assert "clean" in capsys.readouterr().out

    def test_main_module_dispatch_propagates_findings(self, capsys):
        assert repro_main(["lint", VIOLATION_FIXTURE]) == 1
