"""Property-based tests for the Phase II ball-carving clustering."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.cluster import Choreography
from repro.congest import EnergyLedger
from repro.core import ball_carving


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=60),
    p=st.floats(min_value=0.0, max_value=0.5),
    radius=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=400),
)
def test_ball_carving_properties(n, p, radius, seed):
    """On any graph: the clusters partition the nodes, are connected via
    tree edges that exist in the graph, and have height <= radius."""
    graph = graphs.gnp(n, p, seed=seed)
    ledger = EnergyLedger(graph.nodes)
    trees = ball_carving(graph, radius, Choreography(ledger))

    covered = set()
    for center, tree in trees.items():
        tree.validate()
        assert tree.root == center
        assert tree.height <= radius
        assert not (covered & tree.nodes)
        covered |= tree.nodes
        for node, parent in tree.parent.items():
            if parent is not None:
                assert graph.has_edge(node, parent)
    assert covered == set(graph.nodes)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=50),
    seed=st.integers(min_value=0, max_value=200),
)
def test_ball_carving_respects_components(n, seed):
    """No cluster spans two connected components."""
    graph = graphs.gnp(n, 0.08, seed=seed)
    ledger = EnergyLedger(graph.nodes)
    trees = ball_carving(graph, 2, Choreography(ledger))
    component_of = {}
    for index, component in enumerate(nx.connected_components(graph)):
        for node in component:
            component_of[node] = index
    for tree in trees.values():
        assert len({component_of[v] for v in tree.nodes}) == 1
