"""Integration tests for the CONGEST-with-sleeping engine semantics."""

import networkx as nx
import pytest

from repro.congest import (
    DuplicateMessageError,
    EnergyLedger,
    MessageTooLargeError,
    Network,
    NodeProgram,
    NotANeighborError,
    SchedulingError,
    SimulationLimitError,
    run_uniform_program,
)


def path_graph(n=4):
    return nx.path_graph(n)


class HaltImmediately(NodeProgram):
    def on_round(self, ctx):
        ctx.output["ran"] = True
        ctx.halt()


class BroadcastOnce(NodeProgram):
    def on_round(self, ctx):
        if ctx.round == 0:
            ctx.broadcast(True)

    def on_receive(self, ctx, messages):
        ctx.output.setdefault("heard", set()).update(m.sender for m in messages)
        if ctx.round >= 1:
            ctx.halt()


class TestBasicExecution:
    def test_all_nodes_run_and_halt(self):
        network, metrics = run_uniform_program(path_graph(), HaltImmediately)
        assert metrics.rounds == 1
        assert all(network.outputs("ran").values())

    def test_broadcast_delivered_same_round(self):
        network, _ = run_uniform_program(path_graph(3), BroadcastOnce)
        heard = network.outputs("heard")
        assert heard[1] == {0, 2}
        assert heard[0] == {1}

    def test_energy_counts_awake_rounds_only(self):
        _, metrics = run_uniform_program(path_graph(), HaltImmediately)
        assert metrics.max_energy == 1
        assert metrics.average_energy == 1.0

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            Network(nx.Graph(), {})

    def test_missing_program_rejected(self):
        graph = path_graph(2)
        with pytest.raises(ValueError):
            Network(graph, {0: HaltImmediately()})


class SleepyReceiver(NodeProgram):
    """Node 0 broadcasts in round 0; node 1 sleeps round 0, wakes round 1."""

    def on_start(self, ctx):
        if ctx.node == 1:
            ctx.use_wake_schedule([1])

    def on_round(self, ctx):
        if ctx.node == 0 and ctx.round == 0:
            ctx.broadcast("hello")

    def on_receive(self, ctx, messages):
        ctx.output.setdefault("got", []).extend(m.payload for m in messages)
        if ctx.node == 0 and ctx.round >= 1:
            ctx.halt()


class TestSleepingSemantics:
    def test_message_to_sleeping_node_is_dropped(self):
        graph = nx.path_graph(2)
        network = Network(graph, {0: SleepyReceiver(), 1: SleepyReceiver()})
        metrics = network.run()
        assert network.outputs("got")[1] in (None, [])
        assert metrics.messages_dropped == 1

    def test_sleeping_node_charges_no_energy(self):
        graph = nx.path_graph(2)
        network = Network(graph, {0: SleepyReceiver(), 1: SleepyReceiver()})
        network.run()
        # Node 1 was awake only in its single scheduled round.
        assert network.ledger.awake_rounds(1) == 1

    def test_scheduling_in_the_past_rejected(self):
        class BadScheduler(NodeProgram):
            def on_round(self, ctx):
                ctx.use_wake_schedule([0])  # current round is 0

        with pytest.raises(SchedulingError):
            run_uniform_program(path_graph(2), BadScheduler)

    def test_sending_during_on_start_rejected(self):
        class EagerSender(NodeProgram):
            def on_start(self, ctx):
                if ctx.neighbors:
                    ctx.send(ctx.neighbors[0], True)

        with pytest.raises(SchedulingError):
            run_uniform_program(path_graph(2), EagerSender)

    def test_halted_node_never_wakes_again(self):
        class HaltThenSchedule(NodeProgram):
            def on_round(self, ctx):
                ctx.output["rounds"] = ctx.output.get("rounds", 0) + 1
                if ctx.node == 0:
                    ctx.halt()
                elif ctx.round >= 2:
                    ctx.halt()

        network, _ = run_uniform_program(path_graph(2), HaltThenSchedule)
        assert network.outputs("rounds")[0] == 1
        assert network.outputs("rounds")[1] == 3


class TestCongestConstraints:
    def test_oversized_message_rejected(self):
        class BigTalker(NodeProgram):
            def on_round(self, ctx):
                ctx.send(ctx.neighbors[0], "x" * 10_000)

        with pytest.raises(MessageTooLargeError):
            run_uniform_program(path_graph(2), BigTalker)

    def test_duplicate_edge_message_rejected(self):
        class DoubleSender(NodeProgram):
            def on_round(self, ctx):
                ctx.send(ctx.neighbors[0], 1)
                ctx.send(ctx.neighbors[0], 2)

        with pytest.raises(DuplicateMessageError):
            run_uniform_program(path_graph(2), DoubleSender)

    def test_non_neighbor_rejected(self):
        class LongRangeSender(NodeProgram):
            def on_round(self, ctx):
                if ctx.node == 0:
                    ctx.send(3, True)  # nodes 0 and 3 are not adjacent
                ctx.halt()

        with pytest.raises(NotANeighborError):
            run_uniform_program(path_graph(4), LongRangeSender)

    def test_max_message_bits_tracked(self):
        network, metrics = run_uniform_program(path_graph(3), BroadcastOnce)
        assert metrics.max_message_bits == 1
        assert metrics.messages_sent == 4


class TestDeterminism:
    def test_same_seed_same_run(self):
        class CoinFlipper(NodeProgram):
            def on_round(self, ctx):
                ctx.output["coin"] = int(ctx.rng.integers(0, 2**30))
                ctx.halt()

        g = path_graph(5)
        net1, _ = run_uniform_program(g, CoinFlipper, seed=42)
        net2, _ = run_uniform_program(g, CoinFlipper, seed=42)
        assert net1.outputs("coin") == net2.outputs("coin")

    def test_different_seed_different_run(self):
        class CoinFlipper(NodeProgram):
            def on_round(self, ctx):
                ctx.output["coin"] = int(ctx.rng.integers(0, 2**30))
                ctx.halt()

        g = path_graph(5)
        net1, _ = run_uniform_program(g, CoinFlipper, seed=1)
        net2, _ = run_uniform_program(g, CoinFlipper, seed=2)
        assert net1.outputs("coin") != net2.outputs("coin")

    def test_per_node_rngs_are_independent(self):
        class CoinFlipper(NodeProgram):
            def on_round(self, ctx):
                ctx.output["coin"] = int(ctx.rng.integers(0, 2**30))
                ctx.halt()

        net, _ = run_uniform_program(path_graph(8), CoinFlipper, seed=7)
        coins = list(net.outputs("coin").values())
        assert len(set(coins)) > 1


class TestRunControl:
    def test_simulation_limit_raises(self):
        class Forever(NodeProgram):
            pass  # always awake, never halts

        graph = path_graph(2)
        network = Network(graph, {v: Forever() for v in graph})
        with pytest.raises(SimulationLimitError):
            network.run(max_rounds=10)

    def test_run_rounds_exact(self):
        class Forever(NodeProgram):
            pass

        graph = path_graph(2)
        network = Network(graph, {v: Forever() for v in graph})
        metrics = network.run_rounds(5)
        assert metrics.rounds == 5
        assert metrics.max_energy == 5

    def test_idle_gap_rounds_charge_nothing(self):
        class LateWaker(NodeProgram):
            def on_start(self, ctx):
                ctx.use_wake_schedule([10])

            def on_round(self, ctx):
                ctx.output["woke_at"] = ctx.round
                ctx.halt()

        network, metrics = run_uniform_program(path_graph(2), LateWaker)
        assert metrics.rounds == 11
        assert metrics.max_energy == 1
        assert network.outputs("woke_at") == {0: 10, 1: 10}

    def test_shared_ledger_accumulates_across_networks(self):
        graph = path_graph(2)
        ledger = EnergyLedger(graph.nodes)
        Network(graph, {v: HaltImmediately() for v in graph}, ledger=ledger).run()
        Network(graph, {v: HaltImmediately() for v in graph}, ledger=ledger).run()
        assert ledger.max_energy() == 2

    def test_size_bound_overrides_budget_base(self):
        graph = path_graph(2)
        small = Network(graph, {v: HaltImmediately() for v in graph})
        big = Network(
            graph, {v: HaltImmediately() for v in graph}, size_bound=2**20
        )
        assert big.bit_budget > small.bit_budget
