"""Config sensitivity: the knobs must move the measured quantities in the
documented direction (these are the levers the ablations pull)."""


from repro import graphs
from repro.analysis import verify_mis
from repro.core import DEFAULT_CONFIG, algorithm1, run_phase2, run_phase3


class TestShatterBudget:
    def test_more_shattering_fewer_undecided(self):
        n = 512
        g = graphs.gnp_expected_degree(n, 22.0, seed=0)
        light = run_phase2(
            g, seed=0, size_bound=n,
            config=DEFAULT_CONFIG.with_overrides(phase2_shatter_factor=1.0),
        )
        heavy = run_phase2(
            g, seed=0, size_bound=n,
            config=DEFAULT_CONFIG.with_overrides(phase2_shatter_factor=4.0),
        )
        assert len(heavy.remaining) <= len(light.remaining)
        assert (
            heavy.details["shatter_iterations"]
            > light.details["shatter_iterations"]
        )

    def test_radius_bounds_cluster_heights(self):
        n = 512
        g = graphs.gnp_expected_degree(n, 22.0, seed=1)
        wide = run_phase2(
            g, seed=0, size_bound=n,
            config=DEFAULT_CONFIG.with_overrides(phase2_radius_factor=2.0),
        )
        radius = DEFAULT_CONFIG.with_overrides(
            phase2_radius_factor=2.0
        ).phase2_radius(n)
        for state in wide.components:
            for tree in state.trees.values():
                assert tree.height <= radius


class TestPhase3Knobs:
    def test_more_executions_more_message_bits(self):
        from repro.cluster import singleton_clusters

        g = graphs.gnp(30, 0.2, seed=2)
        import networkx as nx

        comp = max(nx.connected_components(g), key=lambda c: (len(c), min(c)))
        sub = g.subgraph(comp).copy()
        few = run_phase3(
            [singleton_clusters(sub.copy())], seed=0, size_bound=2**4,
            config=DEFAULT_CONFIG.with_overrides(phase3_execution_factor=0.5),
        )
        many = run_phase3(
            [singleton_clusters(sub.copy())], seed=0, size_bound=2**12,
            config=DEFAULT_CONFIG.with_overrides(phase3_execution_factor=2.0),
        )
        assert many.details["executions"] > few.details["executions"]

    def test_zero_retries_still_valid(self):
        g = graphs.gnp_expected_degree(300, 18.0, seed=3)
        result = algorithm1(
            g, seed=0,
            config=DEFAULT_CONFIG.with_overrides(phase3_retries=0),
        )
        assert verify_mis(g, result.mis).independent


class TestPhase1Knobs:
    def test_round_factor_scales_rounds(self):
        from repro.core import run_phase1_alg1

        n = 512
        g = graphs.gnp_expected_degree(n, 200.0, seed=4)
        fast = run_phase1_alg1(g, seed=0, size_bound=n)
        slow = run_phase1_alg1(
            g, seed=0, size_bound=n,
            config=DEFAULT_CONFIG.with_overrides(phase1_round_factor=2.0),
        )
        assert fast.details["iterations"] >= 1
        assert slow.metrics.rounds > fast.metrics.rounds

    def test_mark_divisor_slows_sampling(self):
        from repro.core import run_phase1_alg1

        n = 512
        g = graphs.gnp_expected_degree(n, 200.0, seed=5)
        aggressive = run_phase1_alg1(
            g, seed=0, size_bound=n,
            config=DEFAULT_CONFIG.with_overrides(phase1_mark_divisor=2.0),
        )
        cautious = run_phase1_alg1(
            g, seed=0, size_bound=n,
            config=DEFAULT_CONFIG.with_overrides(phase1_mark_divisor=40.0),
        )
        assert (
            cautious.details["sampled_nodes"]
            <= aggressive.details["sampled_nodes"]
        )

    def test_alg2_floor_gates_phase(self):
        from repro.core import run_phase1_alg2

        n = 400
        g = graphs.gnp_expected_degree(n, 100.0, seed=6)
        gated = run_phase1_alg2(
            g, seed=0, size_bound=n,
            config=DEFAULT_CONFIG.with_overrides(alg2_floor_exponent=4.0),
        )
        active = run_phase1_alg2(
            g, seed=0, size_bound=n,
            config=DEFAULT_CONFIG.with_overrides(alg2_floor_exponent=1.0),
        )
        assert gated.details["iterations"] == 0
        assert active.details["iterations"] >= 1
