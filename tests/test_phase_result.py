"""Tests for the PhaseResult partition checks and RunMetrics snapshots."""

import pytest

from repro.congest import EnergyLedger
from repro.congest.metrics import RunMetrics
from repro.core import PhaseResult


def metrics():
    return RunMetrics(rounds=1, max_energy=0, average_energy=0.0,
                      total_energy=0)


class TestCheckPartition:
    def test_valid_partition(self):
        result = PhaseResult(
            joined={1}, dominated={2}, remaining={3}, metrics=metrics()
        )
        result.check_partition({1, 2, 3})

    def test_missing_node_rejected(self):
        result = PhaseResult(
            joined={1}, dominated=set(), remaining=set(), metrics=metrics()
        )
        with pytest.raises(ValueError):
            result.check_partition({1, 2})

    def test_overlap_rejected(self):
        result = PhaseResult(
            joined={1}, dominated={1}, remaining={2}, metrics=metrics()
        )
        with pytest.raises(ValueError):
            result.check_partition({1, 2})

    def test_dominated_remaining_overlap_rejected(self):
        result = PhaseResult(
            joined=set(), dominated={1}, remaining={1, 2}, metrics=metrics()
        )
        with pytest.raises(ValueError):
            result.check_partition({1, 2})

    def test_extra_node_rejected(self):
        result = PhaseResult(
            joined={1}, dominated={2}, remaining={3}, metrics=metrics()
        )
        with pytest.raises(ValueError):
            result.check_partition({1, 2})


class TestRunMetricsSnapshots:
    def test_delta_energy(self):
        ledger = EnergyLedger([1, 2, 3])
        before = ledger.snapshot()
        ledger.charge(1, 5)
        ledger.charge(2, 1)
        snap = RunMetrics.from_snapshots(10, before, ledger.snapshot())
        assert snap.max_energy == 5
        assert snap.total_energy == 6
        assert snap.average_energy == pytest.approx(2.0)

    def test_scope_restriction(self):
        ledger = EnergyLedger([1, 2, 3])
        before = ledger.snapshot()
        ledger.charge(1, 4)
        snap = RunMetrics.from_snapshots(
            3, before, ledger.snapshot(), nodes=[2, 3]
        )
        assert snap.max_energy == 0

    def test_empty_scope(self):
        ledger = EnergyLedger([1])
        snap = RunMetrics.from_snapshots(
            0, ledger.snapshot(), ledger.snapshot(), nodes=[]
        )
        assert snap.max_energy == 0
        assert snap.average_energy == 0.0

    def test_prior_charges_excluded(self):
        ledger = EnergyLedger([1])
        ledger.charge(1, 100)  # a previous phase
        before = ledger.snapshot()
        ledger.charge(1, 2)
        snap = RunMetrics.from_snapshots(1, before, ledger.snapshot())
        assert snap.max_energy == 2
