"""Tests for rooted cluster trees."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.cluster import RootedTree, convergecast_fold


def small_tree():
    #      0
    #    /   \
    #   1     2
    #   |
    #   3
    return RootedTree(
        root=0,
        parent={0: None, 1: 0, 2: 0, 3: 1},
        depth={0: 0, 1: 1, 2: 1, 3: 2},
    )


class TestRootedTree:
    def test_validate_accepts_good_tree(self):
        small_tree().validate()

    def test_height(self):
        assert small_tree().height == 2

    def test_children_sorted(self):
        assert small_tree().children()[0] == [1, 2]

    def test_path_to_root(self):
        assert small_tree().path_to_root(3) == [3, 1, 0]

    def test_nodes_by_depth(self):
        assert small_tree().nodes_by_depth() == [[0], [1, 2], [3]]

    def test_validate_rejects_bad_depth(self):
        tree = small_tree()
        tree.depth[3] = 5
        with pytest.raises(ValueError):
            tree.validate()

    def test_validate_rejects_rooted_cycle(self):
        tree = RootedTree(
            root=0,
            parent={0: None, 1: 2, 2: 1},
            depth={0: 0, 1: 1, 2: 2},
        )
        with pytest.raises(ValueError):
            tree.validate()

    def test_validate_rejects_missing_root(self):
        tree = RootedTree(root=9, parent={0: None}, depth={0: 0})
        with pytest.raises(ValueError):
            tree.validate()

    def test_singleton(self):
        tree = RootedTree(root=5, parent={5: None}, depth={5: 0})
        tree.validate()
        assert tree.height == 0


class TestBFS:
    def test_spans_component(self):
        g = graphs.path(5)
        tree = RootedTree.bfs(g, 0)
        tree.validate()
        assert tree.nodes == set(range(5))
        assert tree.depth[4] == 4

    def test_members_restriction(self):
        g = graphs.path(5)
        tree = RootedTree.bfs(g, 1, members={0, 1, 2})
        assert tree.nodes == {0, 1, 2}
        assert tree.height == 1

    def test_unreachable_member_rejected(self):
        g = graphs.path(5)
        with pytest.raises(ValueError):
            RootedTree.bfs(g, 0, members={0, 4})

    def test_root_not_member_rejected(self):
        with pytest.raises(ValueError):
            RootedTree.bfs(graphs.path(3), 0, members={1, 2})

    def test_bfs_produces_shortest_depths(self):
        g = graphs.cycle(8)
        tree = RootedTree.bfs(g, 0)
        for node in g.nodes:
            assert tree.depth[node] == nx.shortest_path_length(g, 0, node)


class TestReroot:
    def test_reroot_path(self):
        tree = small_tree().rerooted(3)
        tree.validate()
        assert tree.root == 3
        assert tree.depth[2] == 3

    def test_reroot_preserves_nodes(self):
        tree = small_tree().rerooted(2)
        assert tree.nodes == small_tree().nodes

    def test_reroot_to_same_root_is_identity(self):
        tree = small_tree().rerooted(0)
        assert tree.parent == small_tree().parent

    def test_reroot_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            small_tree().rerooted(42)


class TestConvergecastFold:
    def test_sum(self):
        tree = small_tree()
        values = {v: 1 for v in tree.nodes}
        assert convergecast_fold(tree, values, lambda a, b: a + b) == 4

    def test_max(self):
        tree = small_tree()
        values = {0: 5, 1: 9, 2: 2, 3: 7}
        assert convergecast_fold(tree, values, max) == 9

    def test_missing_value_rejected(self):
        tree = small_tree()
        with pytest.raises(ValueError):
            convergecast_fold(tree, {0: 1}, max)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=40),
    seed=st.integers(min_value=0, max_value=500),
    new_root_index=st.integers(min_value=0, max_value=39),
)
def test_reroot_preserves_tree_structure(n, seed, new_root_index):
    g = graphs.gnp(n, 0.3, seed=seed)
    component = max(nx.connected_components(g), key=lambda c: (len(c), sorted(c)))
    root = min(component)
    tree = RootedTree.bfs(g, root, members=component)
    tree.validate()
    members = sorted(tree.nodes)
    new_root = members[new_root_index % len(members)]
    rerooted = tree.rerooted(new_root)
    rerooted.validate()
    assert rerooted.nodes == tree.nodes
    # Re-rooting preserves the undirected edge set.
    def edges(t):
        return {
            frozenset((a, b))
            for a, b in t.parent.items()
            if b is not None
        }
    assert edges(rerooted) == edges(tree)
