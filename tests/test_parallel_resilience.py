"""Resilient ``parallel_map``: timeouts, retries, and crash recovery.

The regression suite for the harness's fault tolerance:

* a worker calling ``os._exit`` (stand-in for segfault/OOM-kill) must
  break only its own chunk — the pool is rebuilt, surviving tasks finish,
  and nothing hangs or leaks orphan processes;
* per-task wall-clock timeouts raise :class:`TaskTimeoutError` on both
  the serial and pool paths;
* bounded retries with exponential backoff re-run failed chunks, and
  ``on_failure`` converts exhausted tasks into ``None`` slots;
* ``KeyboardInterrupt`` tears the pool down promptly (no orphans).
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.harness.parallel import (
    TaskTimeoutError,
    WorkerCrashError,
    default_resilience,
    parallel_map,
    set_default_resilience,
    use_resilience,
)


def _square(x):
    return x * x


def _crash_on_five(x):
    if x == 5:
        os._exit(13)  # bypasses all exception handling, like a segfault
    return x


def _sleep_on_two(x):
    if x == 2:
        time.sleep(30)
    return x


def _always_fails(x):
    raise RuntimeError(f"boom {x}")


# -- worker crash recovery ------------------------------------------------

def test_dying_worker_does_not_hang_the_pool():
    failures = []
    started = time.monotonic()
    results = parallel_map(
        _crash_on_five, list(range(8)), n_jobs=2, retries=1, backoff=0.05,
        on_failure=lambda task, exc: failures.append((task, exc)),
    )
    elapsed = time.monotonic() - started
    assert elapsed < 30, "pool hung on a dead worker"
    assert results[5] is None
    assert [results[i] for i in range(8) if i != 5] == [
        i for i in range(8) if i != 5
    ]
    assert any(isinstance(exc, WorkerCrashError) for _, exc in failures)


def test_dying_worker_raises_without_failure_handler():
    with pytest.raises(WorkerCrashError):
        parallel_map(
            _crash_on_five, list(range(8)), n_jobs=2, retries=0, backoff=0.01
        )


def test_crash_failure_consumes_retries_then_reports():
    # Three tasks so the pool path engages (a single task would clamp to
    # the serial path, where os._exit would take the test process down).
    failures = []
    results = parallel_map(
        _crash_on_five, [4, 5, 6], n_jobs=2, retries=2, backoff=0.01,
        on_failure=lambda task, exc: failures.append(exc),
    )
    assert results == [4, None, 6]
    assert len(failures) == 1
    assert isinstance(failures[0], WorkerCrashError)


# -- timeouts -------------------------------------------------------------

@pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="needs SIGALRM"
)
def test_serial_timeout_raises():
    with pytest.raises(TaskTimeoutError):
        parallel_map(_sleep_on_two, [0, 1, 2], task_timeout=0.2)


@pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="needs SIGALRM"
)
def test_pool_timeout_soft_fails_with_handler():
    failures = []
    results = parallel_map(
        _sleep_on_two, [0, 1, 2, 3], n_jobs=2, task_timeout=0.5,
        backoff=0.01,
        on_failure=lambda task, exc: failures.append((task, exc)),
    )
    assert results == [0, 1, None, 3]
    assert len(failures) == 1
    assert isinstance(failures[0][1], TaskTimeoutError)


# -- retries --------------------------------------------------------------

def test_exhausted_retries_propagate_without_handler():
    with pytest.raises(RuntimeError, match="boom"):
        parallel_map(_always_fails, [1], retries=1, backoff=0.01)


def test_exhausted_retries_soften_with_handler():
    failures = []
    results = parallel_map(
        _always_fails, [1, 2], n_jobs=2, retries=1, backoff=0.01,
        on_failure=lambda task, exc: failures.append(task),
    )
    assert results == [None, None]
    assert sorted(failures) == [1, 2]


def test_results_keep_task_order_under_retries():
    # Chunks complete out of order once retries delay some of them; the
    # returned list must still be in task order.
    failures = []
    results = parallel_map(
        _crash_on_five, list(range(12)), n_jobs=3, chunksize=2, retries=1,
        backoff=0.05,
        on_failure=lambda task, exc: failures.append(task),
    )
    for i in range(12):
        if results[i] is not None:
            assert results[i] == i
    # task 5's chunk is (4, 5): both slots fail together (the chunk is
    # the retry unit) — everything else must have completed.
    assert set(failures) <= {4, 5}
    assert all(results[i] == i for i in range(12) if i not in (4, 5))


def test_on_result_fires_for_every_completed_task():
    seen = {}
    parallel_map(
        _square, list(range(9)), n_jobs=2, chunksize=2,
        on_result=lambda index, task, value: seen.__setitem__(index, value),
    )
    assert seen == {i: i * i for i in range(9)}


# -- validation and defaults ----------------------------------------------

def test_resilience_validation():
    with pytest.raises(ValueError):
        parallel_map(_square, [1], retries=-1)
    with pytest.raises(ValueError):
        parallel_map(_square, [1], task_timeout=0)
    with pytest.raises(ValueError):
        parallel_map(_square, [1], backoff=-1)
    with pytest.raises(ValueError):
        set_default_resilience(retries=-2)


def test_resilience_defaults_roundtrip():
    base = default_resilience()
    with use_resilience(retries=4, task_timeout=7.5, backoff=0.1):
        assert default_resilience() == (4, 7.5, 0.1)
    assert default_resilience() == base


# -- interrupt cleanup ----------------------------------------------------

_INTERRUPT_SCRIPT = """
import os, sys, time
sys.path.insert(0, {src!r})
from repro.harness.parallel import parallel_map

def slow(x):
    time.sleep(60)
    return x

print("READY", os.getpid(), flush=True)
try:
    parallel_map(slow, list(range(4)), n_jobs=2)
except KeyboardInterrupt:
    print("INTERRUPTED", flush=True)
    sys.exit(42)
"""


@pytest.mark.skipif(
    not hasattr(signal, "SIGINT") or os.name == "nt",
    reason="needs POSIX signals",
)
def test_keyboard_interrupt_terminates_workers_promptly():
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    proc = subprocess.Popen(
        [sys.executable, "-c", _INTERRUPT_SCRIPT.format(src=os.path.abspath(src))],
        stdout=subprocess.PIPE,
        text=True,
        start_new_session=True,  # isolate: our SIGINT must not hit pytest
    )
    try:
        line = proc.stdout.readline()
        assert line.startswith("READY")
        time.sleep(1.0)  # let the pool spin up workers
        os.killpg(proc.pid, signal.SIGINT)
        started = time.monotonic()
        out, _ = proc.communicate(timeout=15)
        elapsed = time.monotonic() - started
        assert "INTERRUPTED" in out
        assert proc.returncode == 42
        assert elapsed < 10, "interrupt did not tear the pool down promptly"
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait()
