"""Tests for the ASCII plotting helpers."""

import pytest

from repro.analysis import ascii_chart, sparkline


class TestAsciiChart:
    def test_basic_chart_renders(self):
        chart = ascii_chart({"a": {1: 1.0, 10: 2.0, 100: 3.0}})
        assert "o=a" in chart
        assert "(log x)" in chart

    def test_multiple_series_get_markers(self):
        chart = ascii_chart({
            "first": {1: 1.0, 10: 2.0},
            "second": {1: 3.0, 10: 4.0},
        })
        assert "o=first" in chart
        assert "x=second" in chart

    def test_labels_cover_extremes(self):
        chart = ascii_chart({"a": {1: 5.0, 100: 25.0}})
        assert "25" in chart
        assert "5" in chart

    def test_linear_x(self):
        chart = ascii_chart({"a": {0: 1.0, 5: 2.0}}, log_x=False)
        assert "(log x)" not in chart

    def test_title(self):
        chart = ascii_chart({"a": {1: 1.0, 2: 2.0}}, title="Energy")
        assert chart.splitlines()[0] == "Energy"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"a": {}})

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": {0: 1.0, 1: 2.0}})

    def test_flat_series(self):
        chart = ascii_chart({"a": {1: 5.0, 10: 5.0}})
        assert "o" in chart

    def test_size_parameters(self):
        chart = ascii_chart({"a": {1: 1.0, 10: 9.0}}, width=20, height=5)
        plot_lines = [l for l in chart.splitlines() if "|" in l]
        assert len(plot_lines) == 5


class TestSparkline:
    def test_monotone(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_flat(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_downsampling(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])
