"""Cross-product smoke test: every algorithm × every graph family.

Two guarantees the rest of the suite only covers piecemeal:

* every registered algorithm produces a verified MIS on every registered
  workload family (small n, fixed seed);
* a fixed seed reproduces the identical :class:`MISResult` — set, rounds,
  and energy — run-to-run (the determinism contract the dynamic subsystem
  and the sweep harness both build on).
"""

import pytest

from repro.analysis import verify_mis
from repro.graphs import FAMILIES, make_family
from repro.harness import ALGORITHMS, run_algorithm

N = 24
SEED = 5

MATRIX = [
    (algorithm, family)
    for algorithm in sorted(ALGORITHMS)
    for family in sorted(FAMILIES)
]


@pytest.mark.parametrize("algorithm,family", MATRIX)
def test_every_algorithm_on_every_family(algorithm, family):
    graph = make_family(family, N, seed=SEED)
    result = run_algorithm(algorithm, graph, seed=SEED)
    report = verify_mis(graph, result.mis)
    assert report.independent, (
        f"{algorithm} on {family}: conflicts {report.conflicting_edges}"
    )
    assert report.maximal, (
        f"{algorithm} on {family}: uncovered {report.uncovered_nodes}"
    )


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_fixed_seed_reproduces_identical_results(algorithm):
    graph = make_family("geometric", N, seed=SEED)
    first = run_algorithm(algorithm, graph, seed=SEED)
    second = run_algorithm(algorithm, graph, seed=SEED)
    assert first.mis == second.mis
    assert first.rounds == second.rounds
    assert first.max_energy == second.max_energy
    assert first.average_energy == second.average_energy
