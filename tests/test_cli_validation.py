"""CLI argument validation: bad inputs exit with argparse errors.

Every malformed flag — out-of-range probabilities, negative seeds,
zero/negative job counts or timeouts, unknown channels and fault keys,
``--resume`` without ``--checkpoint``, radio-unsafe combinations — must
produce a clean ``SystemExit`` from argparse (exit code 2), never a
traceback from deep inside the harness. The happy paths confirm the same
flags work when well-formed, including a faulty single run and a
checkpointed multi-seed run driven entirely through ``main(argv)``.
"""

import pytest

from repro.__main__ import main
from repro.congest import set_engine_mode
from repro.harness.parallel import set_default_resilience
from repro.obs.telemetry import set_telemetry_path


@pytest.fixture(autouse=True)
def _reset_cli_globals():
    """``main`` installs module-wide defaults; restore them after each test."""
    yield
    set_engine_mode("auto")
    set_telemetry_path(None)
    set_default_resilience(retries=0, task_timeout=None, backoff=0.5)


def _expect_usage_error(argv):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2  # argparse usage error, not a traceback


BASE = ["--algorithm", "luby", "--n", "24", "--seed", "1"]


# -- malformed values -----------------------------------------------------

@pytest.mark.parametrize("argv", [
    BASE + ["--faults", "drop=1.5"],          # probability out of range
    BASE + ["--faults", "drop=-0.1"],
    BASE + ["--faults", "crash=2"],
    BASE + ["--faults", "drop=abc"],
    BASE + ["--faults", "warp=0.1"],          # unknown fault key
    BASE + ["--faults", "drop"],              # missing =VAL
    ["--algorithm", "luby", "--n", "0"],      # sizes must be positive
    ["--algorithm", "luby", "--n", "-5"],
    ["--algorithm", "luby", "--seed", "-1"],  # negative seed
    ["--algorithm", "luby", "--seeds", "0"],
    ["--algorithm", "luby", "--jobs", "0"],   # only positive or -1
    ["--algorithm", "luby", "--jobs", "-2"],
    ["--algorithm", "luby", "--retries", "-1"],
    ["--algorithm", "luby", "--task-timeout", "0"],
    ["--algorithm", "luby", "--task-timeout", "-3"],
    BASE + ["--channel", "pigeon"],           # unknown channel
    BASE + ["--channel", "lossy(drop=7):congest"],
    BASE + ["--channel", "blursed(x=1):congest"],
    BASE + ["--resume"],                      # --resume needs --checkpoint
])
def test_malformed_flags_exit_cleanly(argv):
    _expect_usage_error(argv)


def test_radio_unsafe_combination_is_an_argparse_error():
    # Luby needs per-neighbor CONGEST messages; a broadcast medium (even a
    # fault-wrapped one) must be refused up front.
    _expect_usage_error(BASE + ["--channel", "broadcast"])
    _expect_usage_error(BASE + ["--channel", "lossy(drop=0.1):broadcast"])


def test_dynamic_subcommand_validates_too():
    _expect_usage_error(["dynamic", "--n", "0"])
    _expect_usage_error(["dynamic", "--seed", "-1"])
    _expect_usage_error(["dynamic", "--retries", "-1"])


# -- happy paths ----------------------------------------------------------

def test_single_run_with_faults_flag(capsys):
    code = main(BASE + ["--faults", "drop=0.1,crash=0.05,seed=3", "--quiet"])
    assert code in (0, 2)  # 2 = non-independent result, still a clean exit
    out = capsys.readouterr().out
    assert "|MIS|" in out


def test_jammed_radio_run_via_faults_flag(capsys):
    code = main([
        "--algorithm", "radio_decay", "--n", "24", "--seed", "1",
        "--faults", "jam=0.2,seed=3", "--quiet",
    ])
    assert code in (0, 2)
    assert "|MIS|" in capsys.readouterr().out


def test_multi_seed_checkpoint_roundtrip(tmp_path, capsys):
    path = str(tmp_path / "cli-cp.jsonl")
    argv = BASE + ["--seeds", "2", "--checkpoint", path, "--quiet"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "mean" in first
    # Resume over the complete checkpoint: replay only, same table.
    assert main(argv + ["--resume"]) == 0
    assert capsys.readouterr().out == first
