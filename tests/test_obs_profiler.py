"""Tests for the wall-clock Profiler and its engine/driver integration."""

import json

import networkx as nx
import pytest

from repro.congest import engine_mode
from repro.harness import run_algorithm
from repro.obs import Profiler, render_profile, section_scope


def _find(sections, name):
    for node in sections:
        if node["name"] == name:
            return node
    return None


class TestProfilerCore:
    def test_nesting_accumulates_by_name(self):
        prof = Profiler()
        for _ in range(3):
            with prof.section("outer"):
                with prof.section("inner"):
                    pass
        tree = prof.as_dict()
        outer = _find(tree["sections"], "outer")
        assert outer["calls"] == 3
        inner = _find(outer["children"], "inner")
        assert inner["calls"] == 3
        assert 0.0 <= inner["total_s"] <= outer["total_s"] <= tree["wall_s"]

    def test_same_name_different_parents_are_distinct(self):
        prof = Profiler()
        with prof.section("a"):
            with prof.section("x"):
                pass
        with prof.section("b"):
            with prof.section("x"):
                pass
        sections = prof.as_dict()["sections"]
        assert _find(_find(sections, "a")["children"], "x")["calls"] == 1
        assert _find(_find(sections, "b")["children"], "x")["calls"] == 1

    def test_as_dict_rejects_open_sections(self):
        prof = Profiler()
        prof.begin("open")
        with pytest.raises(RuntimeError):
            prof.as_dict()
        with pytest.raises(RuntimeError):
            prof.reset()
        prof.end()
        prof.reset()
        assert prof.as_dict()["sections"] == []

    def test_section_is_exception_safe(self):
        prof = Profiler()
        with pytest.raises(ValueError):
            with prof.section("risky"):
                raise ValueError("boom")
        assert prof.as_dict()["sections"][0]["name"] == "risky"

    def test_section_scope_none_is_noop(self):
        with section_scope(None, "anything"):
            pass

    def test_profile_is_json_serializable(self):
        prof = Profiler()
        with prof.section("round"):
            with prof.section("deliver"):
                pass
        text = json.dumps(prof.as_dict())
        assert json.loads(text)["sections"][0]["name"] == "round"


class TestRenderProfile:
    def test_render_shows_tree_and_percentages(self):
        profile = {
            "wall_s": 0.2,
            "sections": [
                {
                    "name": "round",
                    "calls": 10,
                    "total_s": 0.1,
                    "children": [
                        {"name": "deliver", "calls": 10, "total_s": 0.04}
                    ],
                }
            ],
        }
        text = render_profile(profile)
        assert "wall 200.0ms" in text
        assert "round" in text and "deliver" in text
        assert "50.0%" in text and "20.0%" in text
        assert "x10" in text

    def test_render_handles_zero_wall(self):
        text = render_profile({"wall_s": 0.0, "sections": []})
        assert "-" in text


class TestRunAlgorithmProfile:
    def test_profile_embedded_in_details(self):
        graph = nx.gnp_random_graph(60, 0.1, seed=5)
        result = run_algorithm("luby", graph, seed=1, profile=True)
        profile = result.details["profile"]
        assert profile["wall_s"] > 0
        names = {node["name"] for node in profile["sections"]}
        assert "round" in names or "vector_round" in names

    def test_no_profile_by_default(self):
        graph = nx.gnp_random_graph(30, 0.1, seed=5)
        result = run_algorithm("luby", graph, seed=1)
        assert "profile" not in result.details

    def test_scalar_engine_sections(self):
        graph = nx.gnp_random_graph(50, 0.1, seed=6)
        with engine_mode("fast"):
            result = run_algorithm("luby", graph, seed=2, profile=True)
        round_node = _find(result.details["profile"]["sections"], "round")
        assert round_node is not None
        child_names = {c["name"] for c in round_node["children"]}
        assert {"compute", "deliver", "receive"} <= child_names

    def test_vectorized_engine_sections(self):
        graph = nx.gnp_random_graph(80, 0.1, seed=7)
        with engine_mode("vectorized"):
            result = run_algorithm("luby", graph, seed=2, profile=True)
        sections = result.details["profile"]["sections"]
        vector = _find(sections, "vector_round")
        assert vector is not None and vector["calls"] >= 1

    def test_phase_driver_sections_nest_engine_sections(self):
        graph = nx.gnp_random_graph(80, 0.08, seed=8)
        result = run_algorithm("algorithm1", graph, seed=1, profile=True)
        sections = result.details["profile"]["sections"]
        names = [node["name"] for node in sections]
        assert names[:3] == ["phase1", "phase2", "phase3"]
        # At this size phase1 runs zero rounds (no network), but phase2
        # always steps a real engine — its sections must nest inside.
        phase2 = _find(sections, "phase2")
        child_names = {c["name"] for c in phase2.get("children", [])}
        assert child_names & {"round", "vector_round", "idle_ff"}

    def test_sections_sum_within_wall_clock(self):
        graph = nx.gnp_random_graph(60, 0.1, seed=9)
        result = run_algorithm("luby", graph, seed=3, profile=True)
        profile = result.details["profile"]
        tracked = sum(node["total_s"] for node in profile["sections"])
        assert tracked <= profile["wall_s"] + 1e-9

    def test_profile_does_not_change_result(self):
        graph = nx.gnp_random_graph(70, 0.1, seed=10)
        plain = run_algorithm("luby", graph, seed=4)
        profiled = run_algorithm("luby", graph, seed=4, profile=True)
        assert profiled.mis == plain.mis
        assert profiled.metrics == plain.metrics
