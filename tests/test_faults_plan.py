"""Node-fault plans: timelines, network injection, and self-healing.

Covers the three layers of ``repro.faults`` node faults:

* :class:`FaultPlan`/:class:`NodeFault` construction and the seeded
  :meth:`FaultPlan.random` generator (deterministic per seed);
* injection into the scalar step loop — a crash halts its node for good,
  a straggler sleeps through its stall window, and per-epoch verification
  plus the recover path live in ``run_self_healing``;
* self-stabilization — after faults cease, the maintainer restores a
  valid MIS, and the result records the bounded repair cost.
"""

import pytest

from repro.analysis import verify_mis
from repro.faults import (
    CRASH,
    RECOVER,
    STRAGGLE,
    FaultPlan,
    NodeFault,
    heal_mis,
    run_self_healing,
)
from repro.graphs import make_family
from repro.harness import run_algorithm

N = 48
SEED = 7


def _graph(n=N):
    return make_family("gnp_log_degree", n, seed=SEED)


# -- plan construction ----------------------------------------------------

def test_node_fault_validation():
    with pytest.raises(ValueError):
        NodeFault(time=-1, kind=CRASH, node=0)
    with pytest.raises(ValueError):
        NodeFault(time=0, kind="melt", node=0)
    with pytest.raises(ValueError):
        NodeFault(time=0, kind=STRAGGLE, node=0, duration=-2)


def test_fault_plan_random_is_deterministic():
    nodes = range(40)
    a = FaultPlan.random(nodes, seed=5, crash=0.2, straggle=0.2, horizon=10)
    b = FaultPlan.random(nodes, seed=5, crash=0.2, straggle=0.2, horizon=10)
    assert a.events == b.events
    c = FaultPlan.random(nodes, seed=6, crash=0.2, straggle=0.2, horizon=10)
    assert a.events != c.events


def test_fault_plan_random_validation():
    with pytest.raises(ValueError):
        FaultPlan.random(range(10), seed=0, crash=1.5)
    with pytest.raises(ValueError):
        FaultPlan.random(range(10), seed=0, crash=0.1, horizon=0)
    with pytest.raises(ValueError):
        FaultPlan.random(range(10), seed=0, crash=0.1, recover_after=-1)


def test_fault_plan_random_recover_follows_crash():
    plan = FaultPlan.random(
        range(60), seed=2, crash=0.5, horizon=8, recover_after=3
    )
    crashes = {f.node: f.time for f in plan.events if f.kind == CRASH}
    recovers = {f.node: f.time for f in plan.events if f.kind == RECOVER}
    assert recovers  # at 50% over 60 nodes some crash w.h.p.
    assert set(recovers) == set(crashes)
    for node, time in recovers.items():
        assert time == crashes[node] + 3


def test_empty_plan_binds_to_nothing():
    graph = _graph()
    plan = FaultPlan(events=(), seed=0)
    assert plan.empty
    assert plan.bind(None) is None  # no injector for a no-op plan
    result = run_algorithm("luby", graph, seed=SEED, faults=plan)
    assert verify_mis(graph, result.mis).maximal


# -- network injection ----------------------------------------------------

def test_crash_removes_node_from_the_mis_computation():
    graph = _graph()
    # Crash a handful of nodes at round 0: they must not appear in the
    # output MIS, and the survivors' set must be independent.
    victims = sorted(graph.nodes)[:5]
    plan = FaultPlan(
        events=tuple(NodeFault(time=0, kind=CRASH, node=v) for v in victims),
        seed=0,
    )
    result = run_algorithm("luby", graph, seed=SEED, faults=plan)
    assert not (set(victims) & result.mis)
    report = verify_mis(graph, result.mis)
    assert report.independent


def test_crash_mid_run_is_deterministic():
    graph = _graph()
    plan = FaultPlan.random(graph.nodes, seed=3, crash=0.15, horizon=8)
    first = run_algorithm("luby", graph, seed=SEED, faults=plan)
    second = run_algorithm("luby", graph, seed=SEED, faults=plan)
    assert first.mis == second.mis
    assert first.rounds == second.rounds
    assert first.metrics.to_dict() == second.metrics.to_dict()


def test_straggler_changes_the_run_but_still_terminates():
    graph = _graph()
    plan = FaultPlan.random(
        graph.nodes, seed=3, straggle=0.3, horizon=6, straggle_duration=10
    )
    bare = run_algorithm("luby", graph, seed=SEED)
    stalled = run_algorithm("luby", graph, seed=SEED, faults=plan)
    assert stalled.rounds > 0
    # A stalled node misses rounds, so the runs genuinely diverge.
    assert (
        stalled.rounds != bare.rounds or stalled.mis != bare.mis
        or stalled.metrics.to_dict() != bare.metrics.to_dict()
    )


def test_straggler_on_every_algorithm_still_terminates():
    graph = make_family("gnp_log_degree", 32, seed=SEED)
    plan = FaultPlan.random(
        graph.nodes, seed=5, straggle=0.2, horizon=5, straggle_duration=6
    )
    for algorithm in ("luby", "ghaffari2016", "algorithm1"):
        result = run_algorithm(algorithm, graph, seed=SEED, faults=plan)
        assert result.rounds > 0, algorithm


def test_injector_rejects_recover_events():
    graph = _graph()
    plan = FaultPlan(
        events=(
            NodeFault(time=0, kind=CRASH, node=0),
            NodeFault(time=4, kind=RECOVER, node=0),
        ),
        seed=0,
    )
    with pytest.raises(ValueError, match="run_self_healing"):
        run_algorithm("luby", graph, seed=SEED, faults=plan)


def test_injector_rejects_unknown_nodes():
    graph = _graph()
    plan = FaultPlan(
        events=(NodeFault(time=0, kind=CRASH, node="nonexistent"),), seed=0
    )
    with pytest.raises(KeyError):
        run_algorithm("luby", graph, seed=SEED, faults=plan)


# -- healing --------------------------------------------------------------

def test_heal_mis_repairs_a_damaged_candidate():
    graph = _graph()
    # Damage a valid MIS: remove one member (uncovered region appears)
    # and add one of its neighbors plus that neighbor's neighbor if
    # adjacent (conflict appears).
    valid = run_algorithm("luby", graph, seed=SEED).mis
    damaged = set(valid)
    victim = sorted(damaged)[0]
    damaged.discard(victim)
    neighbors = list(graph.neighbors(victim))
    damaged.update(neighbors[:2])
    healed, report = heal_mis(graph, damaged, seed=3)
    check = verify_mis(graph, healed)
    assert check.independent and check.maximal
    assert report.changed


def test_heal_mis_noop_on_valid_set():
    graph = _graph()
    valid = run_algorithm("luby", graph, seed=SEED).mis
    healed, report = heal_mis(graph, valid, seed=3)
    assert healed == valid
    assert not report.changed
    assert report.rounds == 0


def test_heal_mis_after_faulty_channel_run():
    graph = _graph()
    result = run_algorithm(
        "luby", graph, seed=SEED, channel="lossy(drop=0.3,seed=2):congest"
    )
    healed, _ = heal_mis(graph, result.mis, seed=3)
    check = verify_mis(graph, healed)
    assert check.independent and check.maximal


def test_self_healing_crash_only():
    graph = _graph()
    plan = FaultPlan.random(graph.nodes, seed=4, crash=0.2, horizon=6)
    outcome = run_self_healing(graph, plan, seed=SEED)
    assert outcome.crash_count > 0
    assert outcome.all_valid
    assert outcome.stabilized
    # Survivor topology: the final MIS is valid on graph minus crashes.
    crashed = {f.node for f in plan.events if f.kind == CRASH}
    survivor = graph.subgraph(set(graph.nodes) - crashed)
    check = verify_mis(survivor, outcome.final_mis)
    assert check.independent and check.maximal


def test_self_healing_crash_and_recover():
    graph = _graph()
    plan = FaultPlan.random(
        graph.nodes, seed=4, crash=0.25, horizon=6, recover_after=4
    )
    outcome = run_self_healing(graph, plan, seed=SEED)
    assert outcome.recover_count > 0
    assert outcome.stabilized
    # Every crashed node recovered, so the final MIS must be valid on the
    # FULL original graph — the self-stabilization claim.
    check = verify_mis(graph, outcome.final_mis)
    assert check.independent and check.maximal
    # The stabilization cost is the final epoch's repair rounds, bounded
    # by what a full re-election would need.
    assert outcome.stabilization_rounds >= 0
    assert outcome.epochs[-1].valid


def test_self_healing_rejects_stragglers():
    graph = _graph()
    plan = FaultPlan(
        events=(NodeFault(time=1, kind=STRAGGLE, node=0, duration=3),),
        seed=0,
    )
    with pytest.raises(ValueError, match="straggler"):
        run_self_healing(graph, plan)


def test_self_healing_is_deterministic():
    graph = _graph()
    plan = FaultPlan.random(
        graph.nodes, seed=4, crash=0.2, horizon=6, recover_after=3
    )
    a = run_self_healing(graph, plan, seed=SEED)
    b = run_self_healing(graph, plan, seed=SEED)
    assert a.final_mis == b.final_mis
    assert a.total_rounds == b.total_rounds
    assert a.total_energy == b.total_energy
