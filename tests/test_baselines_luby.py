"""Tests for Luby's algorithm on the CONGEST engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.analysis import log2_safe, verify_mis
from repro.baselines import luby_mis


class TestLubyCorrectness:
    def test_path(self):
        result = luby_mis(graphs.path(10), seed=0)
        assert verify_mis(graphs.path(10), result.mis).valid

    def test_clique_picks_exactly_one(self):
        g = graphs.clique(12)
        result = luby_mis(g, seed=1)
        assert len(result.mis) == 1
        assert verify_mis(g, result.mis).valid

    def test_empty_graph_takes_everyone(self):
        g = graphs.empty_graph(6)
        result = luby_mis(g, seed=0)
        assert result.mis == set(range(6))

    def test_star(self):
        g = graphs.star(30)
        result = luby_mis(g, seed=3)
        assert verify_mis(g, result.mis).valid

    def test_single_node(self):
        g = graphs.empty_graph(1)
        result = luby_mis(g, seed=0)
        assert result.mis == {0}

    def test_gnp_many_seeds(self):
        g = graphs.gnp(60, 0.1, seed=7)
        for seed in range(5):
            result = luby_mis(g, seed=seed)
            assert verify_mis(g, result.mis).valid


class TestLubyComplexity:
    def test_energy_equals_time_order(self):
        """Luby's defining weakness: some node is awake ~all rounds."""
        g = graphs.gnp(200, 0.05, seed=2)
        result = luby_mis(g, seed=0)
        assert result.max_energy >= result.rounds / 3 - 3

    def test_rounds_logarithmic_in_practice(self):
        g = graphs.gnp(256, 0.05, seed=4)
        result = luby_mis(g, seed=0)
        # 3 sub-rounds per iteration; expect O(log n) iterations with slack.
        assert result.rounds <= 3 * 10 * log2_safe(256)

    def test_message_bits_within_congest(self):
        g = graphs.gnp(100, 0.1, seed=0)
        result = luby_mis(g, seed=0)
        assert result.metrics.max_message_bits <= 8 * 7 + 32

    def test_isolated_node_energy_is_minimal(self):
        g = graphs.empty_graph(5)
        result = luby_mis(g, seed=0)
        assert result.max_energy <= 2

    def test_determinism(self):
        g = graphs.gnp(50, 0.1, seed=9)
        a = luby_mis(g, seed=11)
        b = luby_mis(g, seed=11)
        assert a.mis == b.mis
        assert a.rounds == b.rounds


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    p=st.floats(min_value=0.0, max_value=0.6),
    graph_seed=st.integers(min_value=0, max_value=500),
    run_seed=st.integers(min_value=0, max_value=500),
)
def test_luby_always_valid_mis(n, p, graph_seed, run_seed):
    graph = graphs.gnp(n, p, seed=graph_seed)
    result = luby_mis(graph, seed=run_seed)
    assert verify_mis(graph, result.mis).valid
