"""Parallel sweeps must be bit-identical to serial ones.

Every (algorithm, family, n, seed[, channel]) cell — and every dynamic
(workload, algorithm, strategy, n, epochs, seed[, rate]) cell — is a fully
self-describing, deterministic task: workers regenerate graphs and derive
all randomness from the task's own seed, never from process-shared
``random.Random``/global generator state. This suite locks that audit in:
``n_jobs=1`` and ``n_jobs>1`` (and any chunking) must agree exactly, in
task order, including the harness-level aggregates.
"""

import pytest

from repro.congest.vectorized import reset_vector_stats
from repro.harness import (
    measure_dynamic_many,
    measure_many,
    sweep,
)
from repro.harness.parallel import parallel_map

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


def test_measure_many_parallel_matches_serial():
    tasks = [
        ("luby", "gnp_log_degree", 48, seed, channel)
        for seed in range(3)
        for channel in (None, "local")
    ]
    serial = measure_many(tasks, n_jobs=1)
    parallel = measure_many(tasks, n_jobs=2)
    assert parallel == serial  # exact float equality: same bits, same order


def test_sweep_parallel_matches_serial():
    kwargs = dict(family="gnp_log_degree", seeds=3, seed_base=11)
    serial = sweep(["luby", "ghaffari2016"], [32, 48], n_jobs=1, **kwargs)
    parallel = sweep(["luby", "ghaffari2016"], [32, 48], n_jobs=3, **kwargs)
    assert len(serial) == len(parallel)
    for ours, theirs in zip(serial, parallel):
        assert ours.algorithm == theirs.algorithm
        assert ours.n == theirs.n
        assert ours.summaries == theirs.summaries


def test_measure_dynamic_many_parallel_matches_serial():
    tasks = [
        ("link_flap", "luby", strategy, 40, 4, seed, 1.0)
        for seed in range(2)
        for strategy in ("incremental", "full_recompute")
    ]
    serial = measure_dynamic_many(tasks, n_jobs=1)
    parallel = measure_dynamic_many(tasks, n_jobs=2)
    assert parallel == serial


def test_parallel_map_chunking_preserves_order_and_values():
    tasks = list(range(17))
    serial = parallel_map(_square, tasks, n_jobs=1)
    chunked = parallel_map(_square, tasks, n_jobs=3, chunksize=4)
    assert chunked == serial == [t * t for t in tasks]


def test_vectorized_path_is_deterministic_across_jobs():
    """The numpy dense-round path (engaged for luby at n >= the auto
    floor) must not perturb cross-process determinism either."""
    reset_vector_stats()
    tasks = [("luby", "gnp_log_degree", 96, seed) for seed in range(3)]
    serial = measure_many(tasks, n_jobs=1)
    parallel = measure_many(tasks, n_jobs=3)
    assert parallel == serial


def _square(task):
    return task * task
