"""The analyzer gate: ``src/repro`` must lint clean, and stay that way.

Also pins the first real bug the linter caught (RL101): GhaffariProgram
wrote an undeclared ``self._joined_now`` inside its join hook — a dead
store that lived only in the instance ``__dict__``, invisible to the
column state layout.
"""

from pathlib import Path

from repro import graphs
from repro.baselines.ghaffari import GhaffariProgram
from repro.congest import Network
from repro.lint import lint_paths

SRC = Path(__file__).parent.parent / "src" / "repro"


def test_src_repro_lints_clean():
    findings = lint_paths([str(SRC)])
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"repro lint found:\n{rendered}"


class TestGhaffariUndeclaredStateRegression:
    """Hooks must not grow instance state the schema never declared."""

    def _run_programs(self, seed=0):
        g = graphs.gnp(30, 0.2, seed=seed)
        programs = {
            v: GhaffariProgram(iterations=40, executions=4)
            for v in g.nodes
        }
        network = Network(g, programs, seed=seed)
        network.run(max_rounds=10 * 40 + 16)
        return programs

    def test_no_joined_now_scratch_attribute(self):
        programs = self._run_programs()
        for program in programs.values():
            assert "_joined_now" not in vars(program)

    def test_instance_dict_stays_within_declared_surface(self):
        """After a full run, no hook has invented new instance state.

        The engine itself stages ``_state_*`` bookkeeping when it binds
        column state; everything else must come from ``__init__``.
        """
        baseline = set(vars(GhaffariProgram(iterations=40, executions=4)))
        for program in self._run_programs(seed=3).values():
            grown = {
                name
                for name in vars(program)
                if not name.startswith("_state_")
            }
            assert grown <= baseline
